//! ENCD (Exact Node Cardinality Decision) and the reductions of Theorem 4.1.
//!
//! ENCD asks, given a bipartite graph `G = (V ∪ W, E)` and integers `a`, `b`,
//! whether `G` contains a bi-clique with **exactly** `a` nodes in `V` and `b`
//! nodes in `W`. The paper reduces ENCD to both OFF-LINE-COUPLED variants:
//!
//! * **µ = 1** — processors are the nodes of `V`, time-slots the nodes of `W`,
//!   processor `i` is `UP` at slot `j` iff `(v_i, w_j) ∈ E`, and the question
//!   becomes "are there `m = a` processors simultaneously `UP` during
//!   `w = b` slots";
//! * **µ = ∞** — same construction plus `|W| + 1` extra all-`UP` slots, with
//!   `w = b + |W| + 1`, which forces any solution to use exactly `a`
//!   processors.
//!
//! This module provides the graph type, an exhaustive bi-clique decision
//! procedure (for validation on small instances), and both reductions.

use crate::problem::OfflineInstance;
use serde::{Deserialize, Serialize};

/// A bipartite graph `G = (V ∪ W, E)` stored as an adjacency matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    /// `adj[i][j]` is `true` iff `(v_i, w_j) ∈ E`.
    pub adj: Vec<Vec<bool>>,
}

impl BipartiteGraph {
    /// Build a graph from its adjacency matrix.
    ///
    /// # Panics
    /// Panics if the matrix is empty or ragged.
    pub fn new(adj: Vec<Vec<bool>>) -> Self {
        assert!(!adj.is_empty() && !adj[0].is_empty(), "both sides must be non-empty");
        let cols = adj[0].len();
        assert!(adj.iter().all(|r| r.len() == cols), "adjacency matrix must be rectangular");
        BipartiteGraph { adj }
    }

    /// Number of nodes on the `V` side.
    pub fn num_v(&self) -> usize {
        self.adj.len()
    }

    /// Number of nodes on the `W` side.
    pub fn num_w(&self) -> usize {
        self.adj[0].len()
    }

    /// `true` iff the node sets `vs ⊆ V`, `ws ⊆ W` form a bi-clique.
    pub fn is_biclique(&self, vs: &[usize], ws: &[usize]) -> bool {
        vs.iter().all(|&i| ws.iter().all(|&j| self.adj[i][j]))
    }
}

/// An ENCD instance: a bipartite graph and the exact cardinalities `a`, `b`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncdInstance {
    /// The bipartite graph.
    pub graph: BipartiteGraph,
    /// Required number of `V` nodes in the bi-clique.
    pub a: usize,
    /// Required number of `W` nodes in the bi-clique.
    pub b: usize,
}

impl EncdInstance {
    /// Build an instance, checking `1 ≤ a ≤ |V|` and `1 ≤ b ≤ |W|`.
    pub fn new(graph: BipartiteGraph, a: usize, b: usize) -> Self {
        assert!(a >= 1 && a <= graph.num_v(), "a must lie in [1, |V|]");
        assert!(b >= 1 && b <= graph.num_w(), "b must lie in [1, |W|]");
        EncdInstance { graph, a, b }
    }

    /// Exhaustive decision: does a bi-clique with exactly `a` × `b` nodes
    /// exist? Exponential in `|V|`; meant for small validation instances.
    pub fn has_biclique(&self) -> bool {
        let mut vs = Vec::with_capacity(self.a);
        self.search_v(0, &mut vs)
    }

    fn search_v(&self, start: usize, vs: &mut Vec<usize>) -> bool {
        if vs.len() == self.a {
            // Count W nodes adjacent to all chosen V nodes.
            let count = (0..self.graph.num_w())
                .filter(|&j| vs.iter().all(|&i| self.graph.adj[i][j]))
                .count();
            return count >= self.b;
        }
        let nv = self.graph.num_v();
        if nv - start < self.a - vs.len() {
            return false;
        }
        for i in start..nv {
            vs.push(i);
            if self.search_v(i + 1, vs) {
                return true;
            }
            vs.pop();
        }
        false
    }

    /// Reduction of Theorem 4.1 (i): the equivalent OFF-LINE-COUPLED(µ=1)
    /// instance with `p = |V|`, `N = |W|`, `m = a`, `w = b`.
    pub fn to_offline_mu1(&self) -> OfflineInstance {
        OfflineInstance::new(self.graph.adj.clone(), self.b as u64, self.a)
    }

    /// Reduction of Theorem 4.1 (ii): the equivalent OFF-LINE-COUPLED(µ=∞)
    /// instance with `N = 2|W| + 1` (the last `|W| + 1` slots are all-`UP`),
    /// `m = a`, `w = b + |W| + 1`... in the paper's single-task-time units,
    /// i.e. the per-task work is `w` and the extra slots force every solution
    /// to enroll exactly `a` processors.
    pub fn to_offline_mu_unbounded(&self) -> OfflineInstance {
        let nw = self.graph.num_w();
        let up = self
            .graph
            .adj
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r.extend(std::iter::repeat_n(true, nw + 1));
                r
            })
            .collect();
        OfflineInstance::new(up, (self.b + nw + 1) as u64, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_mu1_exact, solve_mu_unbounded_exact};
    use dg_availability::rng::rng_from_seed;
    use rand::Rng;

    fn graph(rows: &[&str]) -> BipartiteGraph {
        BipartiteGraph::new(rows.iter().map(|r| r.chars().map(|c| c == '1').collect()).collect())
    }

    #[test]
    fn biclique_detection() {
        let g = graph(&["110", "111", "011"]);
        assert!(g.is_biclique(&[0, 1], &[0, 1]));
        assert!(!g.is_biclique(&[0, 2], &[0]));
        let yes = EncdInstance::new(g.clone(), 2, 2);
        assert!(yes.has_biclique());
        let no = EncdInstance::new(g, 3, 2);
        assert!(!no.has_biclique());
    }

    #[test]
    fn reduction_mu1_preserves_answers_on_fixed_instances() {
        // A positive instance.
        let pos = EncdInstance::new(graph(&["1101", "1111", "0111"]), 2, 3);
        assert!(pos.has_biclique());
        assert!(solve_mu1_exact(&pos.to_offline_mu1()).is_some());
        // A negative instance: no 3x2 biclique.
        let neg = EncdInstance::new(graph(&["1100", "0110", "0011"]), 3, 2);
        assert!(!neg.has_biclique());
        assert!(solve_mu1_exact(&neg.to_offline_mu1()).is_none());
    }

    #[test]
    fn reduction_mu_unbounded_preserves_answers_on_fixed_instances() {
        let pos = EncdInstance::new(graph(&["1101", "1111", "0111"]), 2, 3);
        assert!(solve_mu_unbounded_exact(&pos.to_offline_mu_unbounded()).is_some());
        let neg = EncdInstance::new(graph(&["1100", "0110", "0011"]), 3, 2);
        assert!(solve_mu_unbounded_exact(&neg.to_offline_mu_unbounded()).is_none());
    }

    #[test]
    fn reductions_agree_with_encd_on_random_instances() {
        let mut rng = rng_from_seed(99);
        for _ in 0..150 {
            let nv = rng.gen_range(2..6);
            let nw = rng.gen_range(2..6);
            let density: f64 = rng.gen_range(0.3..0.95);
            let adj: Vec<Vec<bool>> =
                (0..nv).map(|_| (0..nw).map(|_| rng.gen_bool(density)).collect()).collect();
            let a = rng.gen_range(1..=nv);
            let b = rng.gen_range(1..=nw);
            let encd = EncdInstance::new(BipartiteGraph::new(adj), a, b);
            let expected = encd.has_biclique();
            let mu1 = solve_mu1_exact(&encd.to_offline_mu1()).is_some();
            assert_eq!(mu1, expected, "µ=1 reduction mismatch on {encd:?}");
            let mu_inf = solve_mu_unbounded_exact(&encd.to_offline_mu_unbounded()).is_some();
            assert_eq!(mu_inf, expected, "µ=∞ reduction mismatch on {encd:?}");
        }
    }

    #[test]
    fn reduction_shapes_match_theorem() {
        let encd = EncdInstance::new(graph(&["101", "111"]), 2, 1);
        let mu1 = encd.to_offline_mu1();
        assert_eq!(mu1.num_procs(), 2);
        assert_eq!(mu1.horizon(), 3);
        assert_eq!(mu1.m, 2);
        assert_eq!(mu1.w, 1);
        let mu_inf = encd.to_offline_mu_unbounded();
        assert_eq!(mu_inf.horizon(), 2 * 3 + 1);
        assert_eq!(mu_inf.w, 1 + 3 + 1);
        // The last |W|+1 slots are all-UP.
        for q in 0..2 {
            for t in 3..7 {
                assert!(mu_inf.is_up(q, t));
            }
        }
    }

    #[test]
    #[should_panic]
    fn invalid_cardinalities_rejected() {
        let _ = EncdInstance::new(graph(&["11", "11"]), 3, 1);
    }
}
