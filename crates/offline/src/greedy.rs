//! Polynomial-time greedy heuristics for OFF-LINE-COUPLED.
//!
//! Since the exact problem is NP-hard, these heuristics build the processor
//! set greedily: starting from the empty set, they repeatedly add the
//! processor that keeps the largest number of common `UP` slots. They are
//! sound (any returned witness is valid) but incomplete (they may miss a
//! feasible solution the exact solvers would find) — the gap is measured in
//! the `offline` bench.

use crate::problem::{OfflineInstance, OfflineSolution};

/// Greedy heuristic for OFF-LINE-COUPLED(µ=1): grow the set to exactly `m`
/// processors, each time adding the processor preserving the most common `UP`
/// slots; succeed if `w` common slots remain.
pub fn greedy_mu1(instance: &OfflineInstance) -> Option<OfflineSolution> {
    let sets = greedy_chain(instance);
    if sets.len() < instance.m {
        return None;
    }
    let (processors, slots) = &sets[instance.m - 1];
    if (slots.len() as u64) < instance.w {
        return None;
    }
    Some(OfflineSolution {
        processors: processors.clone(),
        slots: slots[..instance.w as usize].to_vec(),
    })
}

/// Greedy heuristic for OFF-LINE-COUPLED(µ=∞): consider every prefix size `k`
/// of the greedy chain and accept the first one with `⌈m/k⌉·w` common slots.
pub fn greedy_mu_unbounded(instance: &OfflineInstance) -> Option<OfflineSolution> {
    let sets = greedy_chain(instance);
    for (k, (processors, slots)) in sets.iter().enumerate().take(instance.m) {
        let needed = instance.required_slots_for(k + 1);
        if slots.len() as u64 >= needed {
            return Some(OfflineSolution {
                processors: processors.clone(),
                slots: slots[..needed as usize].to_vec(),
            });
        }
    }
    None
}

/// The greedy chain: for every prefix size `k = 1..p`, the processor set built
/// by repeatedly adding the processor that maximizes the remaining common `UP`
/// slot count (ties broken toward the lower index), together with those slots.
fn greedy_chain(instance: &OfflineInstance) -> Vec<(Vec<usize>, Vec<usize>)> {
    let p = instance.num_procs();
    let mut chosen: Vec<usize> = Vec::new();
    let mut common: Vec<usize> = (0..instance.horizon()).collect();
    let mut chain = Vec::with_capacity(p);
    for _ in 0..p {
        let mut best: Option<(usize, Vec<usize>)> = None;
        for q in 0..p {
            if chosen.contains(&q) {
                continue;
            }
            let narrowed: Vec<usize> =
                common.iter().copied().filter(|&t| instance.is_up(q, t)).collect();
            let better = match &best {
                None => true,
                Some((_, best_slots)) => narrowed.len() > best_slots.len(),
            };
            if better {
                best = Some((q, narrowed));
            }
        }
        let (q, narrowed) = best.expect("there is always an unchosen processor");
        chosen.push(q);
        common = narrowed;
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        chain.push((sorted, common.clone()));
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_mu1_exact, solve_mu_unbounded_exact};
    use dg_availability::rng::rng_from_seed;
    use rand::Rng;

    fn matrix(rows: &[&str]) -> Vec<Vec<bool>> {
        rows.iter().map(|r| r.chars().map(|c| c == '1').collect()).collect()
    }

    #[test]
    fn greedy_mu1_finds_obvious_solution() {
        let inst = OfflineInstance::new(matrix(&["111100", "111110", "000011"]), 4, 2);
        let sol = greedy_mu1(&inst).expect("greedy should find the obvious pair");
        assert!(sol.is_valid_mu1(&inst));
        assert_eq!(sol.processors, vec![0, 1]);
    }

    #[test]
    fn greedy_mu1_reports_infeasible_for_too_few_processors() {
        let inst = OfflineInstance::new(matrix(&["1111"]), 1, 2);
        assert!(greedy_mu1(&inst).is_none());
    }

    #[test]
    fn greedy_mu_unbounded_uses_single_strong_processor() {
        let inst = OfflineInstance::new(matrix(&["111111", "101000", "010100"]), 2, 3);
        let sol = greedy_mu_unbounded(&inst).expect("the always-up processor suffices");
        assert!(sol.is_valid_mu_unbounded(&inst));
    }

    #[test]
    fn greedy_solutions_are_always_valid_on_random_instances() {
        let mut rng = rng_from_seed(12);
        for _ in 0..200 {
            let p = rng.gen_range(2..7);
            let n = rng.gen_range(3..12);
            let density: f64 = rng.gen_range(0.3..0.9);
            let up: Vec<Vec<bool>> =
                (0..p).map(|_| (0..n).map(|_| rng.gen_bool(density)).collect()).collect();
            let w = rng.gen_range(1..4);
            let m = rng.gen_range(1..=p);
            let inst = OfflineInstance::new(up, w, m);
            if let Some(sol) = greedy_mu1(&inst) {
                assert!(sol.is_valid_mu1(&inst));
                // Greedy success implies the exact solver also succeeds.
                assert!(solve_mu1_exact(&inst).is_some());
            }
            if let Some(sol) = greedy_mu_unbounded(&inst) {
                assert!(sol.is_valid_mu_unbounded(&inst));
                assert!(solve_mu_unbounded_exact(&inst).is_some());
            }
        }
    }

    #[test]
    fn exact_dominates_greedy() {
        // A trap instance for the greedy: processor 0 has the most UP slots but
        // shares few with the others; the exact solver must still succeed.
        let inst = OfflineInstance::new(matrix(&["1111110000", "0000111111", "0000111111"]), 5, 2);
        assert!(solve_mu1_exact(&inst).is_some());
        // (The greedy picks processor 0 first and then fails — documenting the
        // incompleteness rather than asserting it, since tie-breaking details
        // could change.)
        let _ = greedy_mu1(&inst);
    }
}
