//! Instance and solution representation of OFF-LINE-COUPLED.

use dg_availability::trace::TraceSet;
use serde::{Deserialize, Serialize};

/// An OFF-LINE-COUPLED instance: a boolean availability matrix (`up[q][t]` is
/// `true` when processor `q` is `UP` at time-slot `t`), the per-task work `w`
/// (identical processors) and the number of tasks `m` per iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfflineInstance {
    /// `up[q][t]`: processor `q` is `UP` at slot `t`.
    pub up: Vec<Vec<bool>>,
    /// Time-slots of simultaneous `UP` time needed per task (`w_q = w`).
    pub w: u64,
    /// Number of tasks per iteration.
    pub m: usize,
}

impl OfflineInstance {
    /// Build an instance from an explicit matrix.
    ///
    /// # Panics
    /// Panics if the matrix is empty or ragged, or if `w` or `m` is zero.
    pub fn new(up: Vec<Vec<bool>>, w: u64, m: usize) -> Self {
        assert!(!up.is_empty(), "an instance needs at least one processor");
        let horizon = up[0].len();
        assert!(horizon > 0, "an instance needs at least one time-slot");
        assert!(
            up.iter().all(|row| row.len() == horizon),
            "availability matrix must be rectangular"
        );
        assert!(w > 0, "per-task work w must be positive");
        assert!(m > 0, "the iteration must contain at least one task");
        OfflineInstance { up, w, m }
    }

    /// Build an instance from availability traces: a processor counts as
    /// available at `t` exactly when its trace says `UP`.
    pub fn from_traces(traces: &TraceSet, horizon: u64, w: u64, m: usize) -> Self {
        let up = (0..traces.num_procs())
            .map(|q| (0..horizon).map(|t| traces.trace(q).state_at(t).is_up()).collect())
            .collect();
        OfflineInstance::new(up, w, m)
    }

    /// Number of processors `p`.
    pub fn num_procs(&self) -> usize {
        self.up.len()
    }

    /// Number of known time-slots `N`.
    pub fn horizon(&self) -> usize {
        self.up[0].len()
    }

    /// `true` if processor `q` is `UP` at slot `t`.
    pub fn is_up(&self, q: usize, t: usize) -> bool {
        self.up[q][t]
    }

    /// Time-slots during which *all* processors of `procs` are simultaneously
    /// `UP`.
    pub fn common_up_slots(&self, procs: &[usize]) -> Vec<usize> {
        (0..self.horizon()).filter(|&t| procs.iter().all(|&q| self.up[q][t])).collect()
    }

    /// Number of time-slots during which all processors of `procs` are `UP`.
    pub fn common_up_count(&self, procs: &[usize]) -> usize {
        (0..self.horizon()).filter(|&t| procs.iter().all(|&q| self.up[q][t])).count()
    }

    /// Slots of simultaneous `UP` time needed by `k` processors to run the
    /// iteration when each can hold any number of tasks: `⌈m/k⌉·w`.
    pub fn required_slots_for(&self, k: usize) -> u64 {
        assert!(k > 0);
        (self.m as u64).div_ceil(k as u64) * self.w
    }
}

/// A witness that an iteration can be executed: a set of processors and the
/// common `UP` slots they use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfflineSolution {
    /// Enrolled processors.
    pub processors: Vec<usize>,
    /// Time-slots (strictly increasing) during which they are all `UP`.
    pub slots: Vec<usize>,
}

impl OfflineSolution {
    /// Check that this solution is valid for `instance` under the `µ = 1`
    /// rules: exactly `m` processors, at least `w` common `UP` slots.
    pub fn is_valid_mu1(&self, instance: &OfflineInstance) -> bool {
        self.processors.len() == instance.m
            && self.slots.len() as u64 >= instance.w
            && self.all_up(instance)
    }

    /// Check that this solution is valid under the `µ = ∞` rules: `k ≤ m`
    /// processors and at least `⌈m/k⌉·w` common `UP` slots.
    pub fn is_valid_mu_unbounded(&self, instance: &OfflineInstance) -> bool {
        let k = self.processors.len();
        k >= 1
            && k <= instance.m
            && self.slots.len() as u64 >= instance.required_slots_for(k)
            && self.all_up(instance)
    }

    /// The slot right after the last one used — the iteration's finish time,
    /// directly comparable to a makespan in time-slots.
    ///
    /// ```
    /// use dg_offline::OfflineSolution;
    ///
    /// let sol = OfflineSolution { processors: vec![0, 2], slots: vec![1, 4] };
    /// assert_eq!(sol.finish_time(), 5);
    /// ```
    ///
    /// # Panics
    /// Panics on an empty witness (solvers never produce one).
    pub fn finish_time(&self) -> u64 {
        *self.slots.last().expect("a witness uses at least one slot") as u64 + 1
    }

    fn all_up(&self, instance: &OfflineInstance) -> bool {
        let mut distinct = self.slots.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len() == self.slots.len()
            && self.slots.iter().all(|&t| {
                t < instance.horizon() && self.processors.iter().all(|&q| instance.up[q][t])
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::{ProcState, StateTrace};

    fn small_instance() -> OfflineInstance {
        // 3 processors, 4 slots.
        OfflineInstance::new(
            vec![
                vec![true, true, false, true],
                vec![true, false, true, true],
                vec![true, true, true, false],
            ],
            1,
            2,
        )
    }

    #[test]
    fn accessors_and_common_slots() {
        let inst = small_instance();
        assert_eq!(inst.num_procs(), 3);
        assert_eq!(inst.horizon(), 4);
        assert!(inst.is_up(0, 0));
        assert!(!inst.is_up(0, 2));
        assert_eq!(inst.common_up_slots(&[0, 1]), vec![0, 3]);
        assert_eq!(inst.common_up_count(&[0, 1, 2]), 1);
        assert_eq!(inst.common_up_slots(&[]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn required_slots_balanced_assignment() {
        let inst = OfflineInstance::new(vec![vec![true; 10]; 4], 3, 5);
        assert_eq!(inst.required_slots_for(1), 15);
        assert_eq!(inst.required_slots_for(2), 9);
        assert_eq!(inst.required_slots_for(3), 6);
        assert_eq!(inst.required_slots_for(5), 3);
    }

    #[test]
    fn from_traces_uses_up_only() {
        let traces = TraceSet::new(vec![
            StateTrace::parse("URDU").unwrap(),
            StateTrace::constant(ProcState::Up, 4),
        ]);
        let inst = OfflineInstance::from_traces(&traces, 4, 2, 1);
        assert_eq!(inst.up[0], vec![true, false, false, true]);
        assert_eq!(inst.up[1], vec![true, true, true, true]);
    }

    #[test]
    fn solution_validation() {
        let inst = small_instance();
        let good = OfflineSolution { processors: vec![0, 1], slots: vec![0] };
        assert!(good.is_valid_mu1(&inst));
        // Wrong processor count for µ=1.
        let wrong_count = OfflineSolution { processors: vec![0], slots: vec![0] };
        assert!(!wrong_count.is_valid_mu1(&inst));
        // µ=∞: a single processor needs m·w = 2 slots.
        assert!(!wrong_count.is_valid_mu_unbounded(&inst));
        let single_ok = OfflineSolution { processors: vec![0], slots: vec![0, 1] };
        assert!(single_ok.is_valid_mu_unbounded(&inst));
        // A slot where some processor is not UP is rejected.
        let bad_slot = OfflineSolution { processors: vec![0, 1], slots: vec![1] };
        assert!(!bad_slot.is_valid_mu1(&inst));
        // Duplicate slots are rejected.
        let dup = OfflineSolution { processors: vec![0], slots: vec![0, 0] };
        assert!(!dup.is_valid_mu_unbounded(&inst));
    }

    #[test]
    #[should_panic]
    fn ragged_matrix_rejected() {
        let _ = OfflineInstance::new(vec![vec![true, true], vec![true]], 1, 1);
    }
}
