//! # dg-offline
//!
//! The *off-line* version of the scheduling problem studied in Section IV of
//! *"Scheduling Tightly-Coupled Applications on Heterogeneous Desktop Grids"*
//! (Casanova, Dufossé, Robert, Vivien — HCW/IPDPS 2013): processor
//! availability is known in advance, communication is free
//! (`Tprog = Tdata = 0`) and the workers are identical (`w_q = w`).
//!
//! The paper proves that even this restricted problem is NP-hard, for both the
//! `µ = 1` variant (OFF-LINE-COUPLED(µ=1): find `m` processors simultaneously
//! `UP` during `w` common time-slots) and the `µ = ∞` variant
//! (OFF-LINE-COUPLED(µ=∞): find, for some `k ≤ m`, `k` processors
//! simultaneously `UP` during `⌈m/k⌉·w` common time-slots), by reduction from
//! the Exact Node Cardinality Decision problem (ENCD) on bipartite graphs.
//!
//! This crate provides:
//!
//! * [`problem`] — the instance representation (an availability matrix);
//! * [`exact`] — exponential-time exact solvers for both variants (practical
//!   for the small instances used in tests and benches);
//! * [`greedy`] — polynomial-time greedy heuristics;
//! * [`oracle`] — earliest-finish makespan oracles that chain iterations into
//!   full schedules (exact lower bounds at small `m`, greedy upper bounds
//!   beyond), consumed by the `gap` experiment binary;
//! * [`encd`] — bipartite graphs, bi-clique checking and the two reductions of
//!   Theorem 4.1, with machinery to verify them experimentally.
//!
//! ```
//! use dg_offline::{solve_mu1_exact, OfflineInstance};
//!
//! // 3 processors over 4 slots; find m = 2 processors UP during w = 2 slots.
//! let up = vec![
//!     vec![true, true, false, true],
//!     vec![false, true, true, true],
//!     vec![true, false, false, false],
//! ];
//! let instance = OfflineInstance::new(up, 2, 2);
//! let solution = solve_mu1_exact(&instance).expect("processors 0 and 1 share slots 1 and 3");
//! assert_eq!(solution.processors, vec![0, 1]);
//! assert!(solution.is_valid_mu1(&instance));
//! ```

#![warn(missing_docs)]

pub mod encd;
pub mod exact;
pub mod greedy;
pub mod oracle;
pub mod problem;

pub use encd::{BipartiteGraph, EncdInstance};
pub use exact::{solve_mu1_exact, solve_mu_unbounded_exact};
pub use greedy::{greedy_mu1, greedy_mu_unbounded};
pub use oracle::{
    earliest_finish_exact, earliest_finish_greedy, schedule_exact, schedule_greedy,
    OfflineSchedule, OracleVariant,
};
pub use problem::{OfflineInstance, OfflineSolution};
