//! Makespan oracles: earliest-finish schedules chained over iterations.
//!
//! The solvers in [`crate::exact`] and [`crate::greedy`] answer the paper's
//! *decision* question ("can one iteration run at all?"). The gap experiment
//! needs the *optimization* form: the earliest time-slot by which `n`
//! iterations of the application can complete when availability is known in
//! advance. This module provides both an exact oracle (exponential-time
//! subset search with earliest-finish pruning, practical at the paper's
//! `m ≤ 10`) and a polynomial greedy oracle for larger instances.
//!
//! Iterations of a tightly-coupled application are sequential: iteration
//! `i + 1` can only use time-slots strictly after the slot in which iteration
//! `i` finished. Because feasibility from a start slot `t` is monotone (every
//! schedule that starts at `t' ≥ t` is also available at `t`), repeatedly
//! taking the earliest-finishing single iteration is optimal — so the exact
//! chained makespan is a true lower bound on *any* execution of the instance,
//! online or offline. The greedy oracle returns a feasible (witnessed)
//! schedule instead, i.e. an upper bound on the offline optimum.
//!
//! ```
//! use dg_offline::{schedule_exact, schedule_greedy, OfflineInstance, OracleVariant};
//!
//! // Two processors sharing UP slots 0..6; m = 2 tasks of w = 1.
//! let inst = OfflineInstance::new(vec![vec![true; 6]; 2], 1, 2);
//! let exact = schedule_exact(&inst, 3, OracleVariant::MuUnbounded).unwrap();
//! assert_eq!(exact.makespan, 3); // one slot per iteration, chained
//! let greedy = schedule_greedy(&inst, 3, OracleVariant::MuUnbounded).unwrap();
//! assert!(greedy.makespan >= exact.makespan);
//! ```

use crate::problem::{OfflineInstance, OfflineSolution};

/// Which OFF-LINE-COUPLED variant an oracle solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleVariant {
    /// `µ = 1`: exactly `m` processors, `w` common `UP` slots per iteration.
    Mu1,
    /// `µ = ∞`: any `k ≤ m` processors, `⌈m/k⌉·w` common `UP` slots.
    MuUnbounded,
}

impl OracleVariant {
    /// Enrollment sizes `k` this variant admits on an instance with `p`
    /// processors (largest first, matching [`crate::exact`]'s search order).
    fn sizes(self, instance: &OfflineInstance) -> Vec<usize> {
        let p = instance.num_procs();
        match self {
            OracleVariant::Mu1 => {
                if instance.m <= p {
                    vec![instance.m]
                } else {
                    Vec::new()
                }
            }
            OracleVariant::MuUnbounded => (1..=instance.m.min(p)).rev().collect(),
        }
    }
}

/// A full offline schedule: one witness per iteration plus the achieved
/// makespan (1 + the last slot used).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineSchedule {
    /// Per-iteration witnesses, in execution order. Each iteration's slots
    /// lie strictly after the previous iteration's last slot.
    pub iterations: Vec<OfflineSolution>,
    /// Achieved makespan in time-slots: `1 +` the last slot used.
    pub makespan: u64,
}

impl OfflineSchedule {
    /// Makespan after the first `count` iterations (1-based; `count` must not
    /// exceed the number of scheduled iterations).
    ///
    /// # Panics
    /// Panics if `count` is zero or larger than the schedule.
    pub fn makespan_after(&self, count: u64) -> u64 {
        assert!(count >= 1, "makespan_after needs at least one iteration");
        self.iterations[count as usize - 1].finish_time()
    }

    /// Check the whole schedule against `instance`: every witness valid under
    /// `variant`, and iterations strictly ordered in time.
    pub fn is_valid(&self, instance: &OfflineInstance, variant: OracleVariant) -> bool {
        let mut next_free = 0usize;
        for sol in &self.iterations {
            let valid = match variant {
                OracleVariant::Mu1 => sol.is_valid_mu1(instance),
                OracleVariant::MuUnbounded => sol.is_valid_mu_unbounded(instance),
            };
            let Some(&first) = sol.slots.first() else { return false };
            let Some(&last) = sol.slots.last() else { return false };
            if !valid || first < next_free {
                return false;
            }
            next_free = last + 1;
        }
        self.makespan == next_free as u64
    }
}

/// Earliest-finishing witness of a single iteration starting no earlier than
/// slot `from`, by exhaustive subset search (exact; exponential in the worst
/// case). Returns `None` when no iteration fits in the remaining horizon.
///
/// The search is seeded with the greedy witness and prunes every branch whose
/// common-slot list can no longer beat the best finish found so far (adding a
/// processor only removes common slots, so the `needed`-th common slot can
/// only move later down a branch).
pub fn earliest_finish_exact(
    instance: &OfflineInstance,
    from: usize,
    variant: OracleVariant,
) -> Option<OfflineSolution> {
    let horizon = instance.horizon();
    if from >= horizon {
        return None;
    }
    // Greedy seed: any feasible witness bounds the DFS from above.
    let mut best: Option<(usize, OfflineSolution)> =
        earliest_finish_greedy(instance, from, variant)
            .map(|sol| (*sol.slots.last().expect("witnesses are never empty"), sol));
    let all_slots: Vec<usize> = (from..horizon).collect();
    for k in variant.sizes(instance) {
        let needed = instance.required_slots_for(k) as usize;
        let mut chosen = Vec::with_capacity(k);
        min_finish_fixed_size(instance, 0, &mut chosen, &all_slots, k, needed, &mut best);
    }
    best.map(|(_, sol)| sol)
}

/// Depth-first search over processor subsets of exactly `target` processors,
/// minimizing the `needed`-th common `UP` slot (the iteration's finish).
fn min_finish_fixed_size(
    instance: &OfflineInstance,
    start: usize,
    chosen: &mut Vec<usize>,
    common: &[usize],
    target: usize,
    needed: usize,
    best: &mut Option<(usize, OfflineSolution)>,
) {
    if common.len() < needed {
        return;
    }
    // Any completion of this branch finishes at or after the current
    // `needed`-th common slot; prune when that can no longer improve.
    let finish_here = common[needed - 1];
    if best.as_ref().is_some_and(|(bf, _)| finish_here >= *bf) {
        return;
    }
    if chosen.len() == target {
        let sol = OfflineSolution { processors: chosen.clone(), slots: common[..needed].to_vec() };
        *best = Some((finish_here, sol));
        return;
    }
    let p = instance.num_procs();
    if p - start < target - chosen.len() {
        return;
    }
    for q in start..p {
        // Only slots strictly before the incumbent finish can appear in an
        // improving witness, so truncate while narrowing — on projected
        // instances with long horizons this is what keeps the search fast.
        let cutoff = best.as_ref().map_or(usize::MAX, |(bf, _)| *bf);
        let narrowed: Vec<usize> = common
            .iter()
            .copied()
            .take_while(|&t| t < cutoff)
            .filter(|&t| instance.is_up(q, t))
            .collect();
        if narrowed.len() < needed {
            continue;
        }
        chosen.push(q);
        min_finish_fixed_size(instance, q + 1, chosen, &narrowed, target, needed, best);
        chosen.pop();
    }
}

/// Earliest-finishing witness of a single iteration starting no earlier than
/// slot `from`, built greedily (polynomial; sound but may miss the optimum or
/// even a feasible witness the exact search would find).
///
/// The greedy chain repeatedly adds the processor that keeps the most common
/// `UP` slots at or after `from` (ties toward the lower index); every
/// admissible prefix size is then scored by its finish slot and the earliest
/// one wins.
pub fn earliest_finish_greedy(
    instance: &OfflineInstance,
    from: usize,
    variant: OracleVariant,
) -> Option<OfflineSolution> {
    let horizon = instance.horizon();
    if from >= horizon {
        return None;
    }
    let p = instance.num_procs();
    let mut chosen: Vec<usize> = Vec::new();
    let mut common: Vec<usize> = (from..horizon).collect();
    let mut best: Option<(usize, OfflineSolution)> = None;
    let allowed = variant.sizes(instance);
    for _ in 0..p {
        let mut pick: Option<(usize, Vec<usize>)> = None;
        for q in 0..p {
            if chosen.contains(&q) {
                continue;
            }
            let narrowed: Vec<usize> =
                common.iter().copied().filter(|&t| instance.is_up(q, t)).collect();
            if pick.as_ref().is_none_or(|(_, slots)| narrowed.len() > slots.len()) {
                pick = Some((q, narrowed));
            }
        }
        let (q, narrowed) = pick.expect("there is always an unchosen processor");
        chosen.push(q);
        common = narrowed;
        let k = chosen.len();
        if !allowed.contains(&k) {
            continue;
        }
        let needed = instance.required_slots_for(k) as usize;
        if common.len() < needed {
            continue;
        }
        let finish = common[needed - 1];
        if best.as_ref().is_none_or(|(bf, _)| finish < *bf) {
            let mut processors = chosen.clone();
            processors.sort_unstable();
            best = Some((finish, OfflineSolution { processors, slots: common[..needed].to_vec() }));
        }
    }
    best.map(|(_, sol)| sol)
}

/// Exact chained oracle: the provably minimal makespan of `iterations`
/// sequential iterations, with one earliest-finish witness per iteration.
/// Returns `None` when the instance cannot fit that many iterations in its
/// horizon.
pub fn schedule_exact(
    instance: &OfflineInstance,
    iterations: u64,
    variant: OracleVariant,
) -> Option<OfflineSchedule> {
    chain(instance, iterations, |inst, from| earliest_finish_exact(inst, from, variant))
}

/// Greedy chained oracle: a feasible (witnessed) schedule of `iterations`
/// sequential iterations — an upper bound on the offline optimum, usable as a
/// cheap reference when the exact search is too expensive (large `m`).
pub fn schedule_greedy(
    instance: &OfflineInstance,
    iterations: u64,
    variant: OracleVariant,
) -> Option<OfflineSchedule> {
    chain(instance, iterations, |inst, from| earliest_finish_greedy(inst, from, variant))
}

fn chain(
    instance: &OfflineInstance,
    iterations: u64,
    step: impl Fn(&OfflineInstance, usize) -> Option<OfflineSolution>,
) -> Option<OfflineSchedule> {
    assert!(iterations > 0, "a schedule needs at least one iteration");
    let mut from = 0usize;
    let mut sols = Vec::with_capacity(iterations as usize);
    for _ in 0..iterations {
        let sol = step(instance, from)?;
        from = sol.finish_time() as usize;
        sols.push(sol);
    }
    Some(OfflineSchedule { iterations: sols, makespan: from as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::rng::rng_from_seed;
    use rand::Rng;

    fn matrix(rows: &[&str]) -> Vec<Vec<bool>> {
        rows.iter().map(|r| r.chars().map(|c| c == '1').collect()).collect()
    }

    /// Brute-force minimal finish: enumerate every subset, every admissible
    /// size, and take the smallest `needed`-th common slot at or after `from`.
    fn brute_force_finish(
        instance: &OfflineInstance,
        from: usize,
        variant: OracleVariant,
    ) -> Option<usize> {
        let p = instance.num_procs();
        let mut best: Option<usize> = None;
        for mask in 1u32..(1 << p) {
            let procs: Vec<usize> = (0..p).filter(|&q| mask & (1 << q) != 0).collect();
            let k = procs.len();
            let admissible = match variant {
                OracleVariant::Mu1 => k == instance.m,
                OracleVariant::MuUnbounded => k <= instance.m,
            };
            if !admissible {
                continue;
            }
            let needed = instance.required_slots_for(k) as usize;
            let slots: Vec<usize> = (from..instance.horizon())
                .filter(|&t| procs.iter().all(|&q| instance.is_up(q, t)))
                .collect();
            if slots.len() >= needed {
                let finish = slots[needed - 1];
                if best.is_none_or(|b| finish < b) {
                    best = Some(finish);
                }
            }
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_random_tiny_instances() {
        let mut rng = rng_from_seed(99);
        for case in 0..300 {
            let p = rng.gen_range(1..7); // m ≤ 6
            let n = rng.gen_range(2..9); // T ≤ 8
            let density: f64 = rng.gen_range(0.2..0.95);
            let up: Vec<Vec<bool>> =
                (0..p).map(|_| (0..n).map(|_| rng.gen_bool(density)).collect()).collect();
            let w = rng.gen_range(1..4);
            let m = rng.gen_range(1..=p);
            let inst = OfflineInstance::new(up, w, m);
            let from = rng.gen_range(0..n);
            for variant in [OracleVariant::Mu1, OracleVariant::MuUnbounded] {
                let brute = brute_force_finish(&inst, from, variant);
                let exact = earliest_finish_exact(&inst, from, variant);
                assert_eq!(
                    exact.as_ref().map(|s| *s.slots.last().unwrap()),
                    brute,
                    "case {case} ({variant:?}, from {from}): exact finish != brute force\n{inst:?}"
                );
                if let Some(sol) = &exact {
                    let valid = match variant {
                        OracleVariant::Mu1 => sol.is_valid_mu1(&inst),
                        OracleVariant::MuUnbounded => sol.is_valid_mu_unbounded(&inst),
                    };
                    assert!(valid, "case {case}: invalid exact witness {sol:?}");
                    assert!(*sol.slots.first().unwrap() >= from);
                }
                if let Some(sol) = earliest_finish_greedy(&inst, from, variant) {
                    // Greedy is sound and never beats exact.
                    assert!(*sol.slots.last().unwrap() >= brute.unwrap());
                }
            }
        }
    }

    #[test]
    fn greedy_schedule_never_beats_exact_schedule() {
        let mut rng = rng_from_seed(4242);
        for _ in 0..120 {
            let p = rng.gen_range(2..6);
            let n = rng.gen_range(6..24);
            let density: f64 = rng.gen_range(0.4..0.95);
            let up: Vec<Vec<bool>> =
                (0..p).map(|_| (0..n).map(|_| rng.gen_bool(density)).collect()).collect();
            let inst = OfflineInstance::new(up, rng.gen_range(1..3), rng.gen_range(1..=p));
            for variant in [OracleVariant::Mu1, OracleVariant::MuUnbounded] {
                for count in 1..=3u64 {
                    let exact = schedule_exact(&inst, count, variant);
                    let greedy = schedule_greedy(&inst, count, variant);
                    if let Some(g) = &greedy {
                        let e = exact.as_ref().expect("greedy feasible ⇒ exact feasible");
                        assert!(g.is_valid(&inst, variant), "invalid greedy schedule {g:?}");
                        assert!(
                            g.makespan >= e.makespan,
                            "greedy ({}) beat exact ({}) on {inst:?}",
                            g.makespan,
                            e.makespan
                        );
                    }
                    if let Some(e) = &exact {
                        assert!(e.is_valid(&inst, variant), "invalid exact schedule {e:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn chained_iterations_use_disjoint_increasing_windows() {
        let inst = OfflineInstance::new(matrix(&["110111011", "111110111"]), 2, 2);
        let sched = schedule_exact(&inst, 3, OracleVariant::MuUnbounded).expect("fits");
        assert!(sched.is_valid(&inst, OracleVariant::MuUnbounded));
        assert_eq!(sched.iterations.len(), 3);
        for pair in sched.iterations.windows(2) {
            assert!(pair[1].slots.first().unwrap() > pair[0].slots.last().unwrap());
        }
        assert_eq!(sched.makespan, sched.makespan_after(3));
        assert!(sched.makespan_after(1) < sched.makespan_after(2));
    }

    #[test]
    fn infeasible_chains_return_none() {
        // Slots need not be adjacent: {0,1} then {3,4} hosts two iterations.
        let inst = OfflineInstance::new(matrix(&["110110"]), 2, 1);
        let two = schedule_exact(&inst, 2, OracleVariant::MuUnbounded).expect("fits");
        assert_eq!(two.makespan, 5);
        assert!(schedule_exact(&inst, 3, OracleVariant::MuUnbounded).is_none());
        let inst = OfflineInstance::new(matrix(&["111100"]), 2, 1);
        assert!(schedule_exact(&inst, 2, OracleVariant::MuUnbounded).is_some());
        assert!(schedule_exact(&inst, 3, OracleVariant::MuUnbounded).is_none());
        // µ=1 with m > p is infeasible outright.
        let inst = OfflineInstance::new(matrix(&["1111"]), 1, 2);
        assert!(earliest_finish_exact(&inst, 0, OracleVariant::Mu1).is_none());
        assert!(earliest_finish_greedy(&inst, 0, OracleVariant::Mu1).is_none());
    }

    #[test]
    fn exact_escapes_greedy_traps() {
        // Processor 0 has the most UP slots but shares few with the others;
        // the greedy chain picks it first and finishes late (or not at all),
        // while the exact search finds the pair finishing at slot 8.
        let inst = OfflineInstance::new(matrix(&["1111110000", "0000111110", "0000111110"]), 5, 2);
        let exact = earliest_finish_exact(&inst, 0, OracleVariant::Mu1).expect("pair exists");
        assert_eq!(exact.processors, vec![1, 2]);
        assert_eq!(*exact.slots.last().unwrap(), 8);
        if let Some(greedy) = earliest_finish_greedy(&inst, 0, OracleVariant::Mu1) {
            assert!(*greedy.slots.last().unwrap() >= 8);
        }
    }

    #[test]
    fn mu_unbounded_finish_is_never_later_than_mu1() {
        // µ=∞ admits every µ=1 witness, so its earliest finish can only be
        // earlier or equal.
        let mut rng = rng_from_seed(7);
        for _ in 0..100 {
            let p = rng.gen_range(2..6);
            let n = rng.gen_range(4..10);
            let up: Vec<Vec<bool>> =
                (0..p).map(|_| (0..n).map(|_| rng.gen_bool(0.7)).collect()).collect();
            let inst = OfflineInstance::new(up, rng.gen_range(1..3), rng.gen_range(1..=p));
            let mu1 = earliest_finish_exact(&inst, 0, OracleVariant::Mu1);
            let inf = earliest_finish_exact(&inst, 0, OracleVariant::MuUnbounded);
            if let Some(mu1) = mu1 {
                let inf = inf.expect("µ=∞ relaxes µ=1");
                assert!(inf.slots.last().unwrap() <= mu1.slots.last().unwrap());
            }
        }
    }
}
