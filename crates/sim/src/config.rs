//! The active configuration: the set of enrolled workers, their task
//! assignment and the progress of the current iteration.

use crate::assignment::Assignment;
use dg_platform::Platform;
use serde::{Deserialize, Serialize};

/// The configuration currently executing an iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveConfiguration {
    /// The task-to-worker mapping in force.
    pub assignment: Assignment,
    /// Total lock-step computation workload `W = max_q x_q·w_q`, in slots of
    /// simultaneous `UP` time.
    pub workload: u64,
    /// Slots of simultaneous computation already accumulated (`≤ workload`).
    pub computation_done: u64,
    /// Time-slot at which this configuration was selected.
    pub selected_at: u64,
}

impl ActiveConfiguration {
    /// Start a configuration for `assignment` at time `now`.
    pub fn new(assignment: Assignment, platform: &Platform, now: u64) -> Self {
        let workload = assignment.workload(platform);
        ActiveConfiguration { assignment, workload, computation_done: 0, selected_at: now }
    }

    /// Remaining lock-step computation, in slots.
    pub fn remaining_computation(&self) -> u64 {
        self.workload - self.computation_done
    }

    /// `true` once the computation of the iteration is finished.
    pub fn computation_complete(&self) -> bool {
        self.computation_done >= self.workload
    }

    /// Record one slot of simultaneous computation. Returns `true` if the
    /// iteration's computation is now complete.
    pub fn advance_computation(&mut self) -> bool {
        debug_assert!(self.computation_done < self.workload);
        self.computation_done += 1;
        self.computation_complete()
    }

    /// Record `slots` consecutive slots of simultaneous computation that are
    /// known not to finish the iteration. The event-driven engine uses this to
    /// account in bulk for the skipped interior of an uninterrupted
    /// computation run; the finishing slot is always executed individually.
    pub fn advance_computation_bulk(&mut self, slots: u64) {
        debug_assert!(self.computation_done + slots < self.workload);
        self.computation_done += slots;
    }

    /// Abort all computation progress (the configuration changed or a worker
    /// failed): due to the tight coupling, partially completed work is lost.
    pub fn reset_computation(&mut self) {
        self.computation_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            vec![WorkerSpec::new(1), WorkerSpec::new(2), WorkerSpec::new(3)],
            vec![MarkovChain3::always_up(); 3],
        )
    }

    #[test]
    fn workload_and_progress() {
        let a = Assignment::new([(1, 2), (2, 1)]);
        let mut c = ActiveConfiguration::new(a, &platform(), 5);
        assert_eq!(c.workload, 4);
        assert_eq!(c.selected_at, 5);
        assert_eq!(c.remaining_computation(), 4);
        assert!(!c.computation_complete());
        for i in 1..=4u64 {
            let done = c.advance_computation();
            assert_eq!(done, i == 4);
        }
        assert!(c.computation_complete());
        assert_eq!(c.remaining_computation(), 0);
    }

    #[test]
    fn reset_loses_progress() {
        let a = Assignment::new([(0, 3)]);
        let mut c = ActiveConfiguration::new(a, &platform(), 0);
        c.advance_computation();
        c.advance_computation();
        assert_eq!(c.computation_done, 2);
        c.reset_computation();
        assert_eq!(c.computation_done, 0);
        assert_eq!(c.remaining_computation(), 3);
    }
}
