//! Run outcome and aggregate statistics.

use serde::{Deserialize, Serialize};

/// Aggregate statistics collected over one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SimStats {
    /// Number of configurations selected over the whole run.
    pub configurations_selected: u64,
    /// Number of configuration changes that happened while a configuration was
    /// active and none of its workers had failed (proactive aborts).
    pub proactive_changes: u64,
    /// Number of iterations aborted because an enrolled worker went `DOWN`.
    pub iterations_aborted: u64,
    /// Total worker-slots of transfer served by the master.
    pub transfer_slots: u64,
    /// Total slots during which lock-step computation progressed.
    pub computation_slots: u64,
    /// Slots during which a configuration was active but made no progress
    /// (waiting for communication while reclaimed, or computation suspended).
    pub stalled_slots: u64,
    /// Slots during which no configuration was active.
    pub idle_slots: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Number of iterations completed before the run ended.
    pub completed_iterations: u64,
    /// Number of iterations the application required.
    pub target_iterations: u64,
    /// Time-slot at which the last required iteration completed, if the run
    /// succeeded (the makespan).
    pub makespan: Option<u64>,
    /// Total slots simulated (equals the cap for failed runs).
    pub simulated_slots: u64,
    /// Aggregate statistics.
    pub stats: SimStats,
}

impl SimOutcome {
    /// `true` if every required iteration completed before the slot cap.
    pub fn success(&self) -> bool {
        self.makespan.is_some()
    }

    /// Makespan of a successful run.
    ///
    /// # Panics
    /// Panics if the run failed; check [`SimOutcome::success`] first.
    pub fn makespan_or_panic(&self) -> u64 {
        self.makespan.expect("simulation run did not complete all iterations")
    }

    /// Average number of slots per completed iteration, if any completed.
    pub fn slots_per_iteration(&self) -> Option<f64> {
        if self.completed_iterations == 0 {
            None
        } else {
            Some(self.simulated_slots as f64 / self.completed_iterations as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_success_accessors() {
        let ok = SimOutcome {
            completed_iterations: 10,
            target_iterations: 10,
            makespan: Some(431),
            simulated_slots: 431,
            stats: SimStats::default(),
        };
        assert!(ok.success());
        assert_eq!(ok.makespan_or_panic(), 431);
        assert_eq!(ok.slots_per_iteration(), Some(43.1));

        let failed = SimOutcome {
            completed_iterations: 3,
            target_iterations: 10,
            makespan: None,
            simulated_slots: 1_000,
            stats: SimStats::default(),
        };
        assert!(!failed.success());
        assert!(failed.slots_per_iteration().unwrap() > 300.0);
    }

    #[test]
    #[should_panic]
    fn makespan_of_failed_run_panics() {
        let failed = SimOutcome {
            completed_iterations: 0,
            target_iterations: 10,
            makespan: None,
            simulated_slots: 10,
            stats: SimStats::default(),
        };
        let _ = failed.makespan_or_panic();
    }
}
