//! A trivial scheduler that always (re)installs one fixed assignment.
//!
//! Useful for engine tests, for replaying hand-crafted schedules such as the
//! paper's Figure 1 example, and as a minimal [`Scheduler`] implementation to
//! learn the interface from. The real heuristics live in `dg-heuristics`.

use crate::assignment::Assignment;
use crate::view::{Decision, Reevaluation, Scheduler, SimView};

/// Installs a fixed assignment whenever no configuration is active and every
/// worker of the assignment is `UP`; otherwise keeps the current state.
#[derive(Debug, Clone)]
pub struct FixedAssignmentScheduler {
    assignment: Assignment,
    name: String,
}

impl FixedAssignmentScheduler {
    /// Create a scheduler that always proposes `assignment`.
    pub fn new(assignment: Assignment) -> Self {
        FixedAssignmentScheduler { assignment, name: "FIXED".to_string() }
    }

    /// The assignment this scheduler installs.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }
}

impl Scheduler for FixedAssignmentScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, view: &SimView<'_>) -> Decision {
        if view.current.is_some() {
            return Decision::KeepCurrent;
        }
        let all_up = self.assignment.entries().iter().all(|&(q, _)| view.is_up(q));
        if all_up {
            Decision::NewConfiguration(self.assignment.clone())
        } else {
            Decision::KeepCurrent
        }
    }

    fn reevaluation(&self) -> Reevaluation {
        // The decision depends only on the UP set and on whether a
        // configuration is active — never on the clock.
        Reevaluation::never()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::WorkerView;
    use crate::worker_state::WorkerDynamicState;
    use dg_availability::ProcState;
    use dg_platform::{ApplicationSpec, MasterSpec, Platform};

    #[test]
    fn proposes_only_when_members_up_and_idle() {
        let platform = Platform::reliable_homogeneous(2, 1);
        let application = ApplicationSpec::new(2, 1);
        let master = MasterSpec::from_slots(1, 1, 1);
        let assignment = Assignment::new([(0, 1), (1, 1)]);
        let mut sched = FixedAssignmentScheduler::new(assignment.clone());
        assert_eq!(sched.name(), "FIXED");
        assert_eq!(sched.assignment(), &assignment);

        let make_view = |states: [ProcState; 2]| -> Vec<WorkerView> {
            states
                .iter()
                .map(|&s| WorkerView { state: s, dynamic: WorkerDynamicState::fresh() })
                .collect()
        };

        // Both up, idle -> proposes.
        let workers = make_view([ProcState::Up, ProcState::Up]);
        let view = SimView {
            time: 0,
            iteration: 0,
            completed_iterations: 0,
            iteration_started_at: 0,
            workers: &workers,
            platform: &platform,
            application: &application,
            master: &master,
            current: None,
        };
        assert_eq!(sched.decide(&view), Decision::NewConfiguration(assignment.clone()));

        // One worker reclaimed -> keeps waiting.
        let workers = make_view([ProcState::Up, ProcState::Reclaimed]);
        let view = SimView { workers: &workers, ..view };
        assert_eq!(sched.decide(&view), Decision::KeepCurrent);

        // Config already active -> never changes it.
        let cfg = crate::config::ActiveConfiguration::new(assignment.clone(), &platform, 0);
        let workers = make_view([ProcState::Up, ProcState::Up]);
        let view = SimView { workers: &workers, current: Some(&cfg), ..view };
        assert_eq!(sched.decide(&view), Decision::KeepCurrent);
    }
}
