//! The time-slot simulation engine.

use crate::assignment::Assignment;
use crate::config::ActiveConfiguration;
use crate::events::{EventKind, EventLog};
use crate::metrics::{SimOutcome, SimStats};
use crate::view::{Decision, Scheduler, SimView, WorkerView};
use crate::worker_state::WorkerDynamicState;
use dg_availability::trace::AvailabilityModel;
use dg_availability::ProcState;
use dg_platform::{ApplicationSpec, MasterSpec, Platform, Scenario};

/// Limits bounding a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationLimits {
    /// Maximum number of time-slots to simulate before declaring the run
    /// failed. The paper's evaluation uses 10⁶.
    pub max_slots: u64,
}

impl Default for SimulationLimits {
    fn default() -> Self {
        SimulationLimits { max_slots: 1_000_000 }
    }
}

impl SimulationLimits {
    /// Limits with the given slot cap.
    pub fn with_max_slots(max_slots: u64) -> Self {
        assert!(max_slots > 0, "the slot cap must be positive");
        SimulationLimits { max_slots }
    }
}

/// The discrete-event (time-slot) simulator.
///
/// A `Simulator` owns the availability realization for one trial and is
/// consumed by [`Simulator::run`], which drives a [`Scheduler`] until the
/// application completes or the slot cap is reached.
pub struct Simulator<A: AvailabilityModel> {
    platform: Platform,
    application: ApplicationSpec,
    master: MasterSpec,
    availability: A,
    limits: SimulationLimits,
    log_events: bool,
}

impl<A: AvailabilityModel> Simulator<A> {
    /// Build a simulator from a scenario and an availability realization.
    pub fn new(scenario: &Scenario, availability: A) -> Self {
        Simulator::from_parts(
            scenario.platform.clone(),
            scenario.application,
            scenario.master,
            availability,
        )
    }

    /// Build a simulator from explicit components.
    pub fn from_parts(
        platform: Platform,
        application: ApplicationSpec,
        master: MasterSpec,
        availability: A,
    ) -> Self {
        assert_eq!(
            availability.num_procs(),
            platform.num_workers(),
            "availability model and platform must describe the same workers"
        );
        assert!(
            platform.total_capacity(application.tasks_per_iteration)
                >= application.tasks_per_iteration,
            "platform cannot hold the application: Σ µ_q < m"
        );
        Simulator {
            platform,
            application,
            master,
            availability,
            limits: SimulationLimits::default(),
            log_events: false,
        }
    }

    /// Set the slot cap and other limits.
    pub fn with_limits(mut self, limits: SimulationLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enable or disable detailed event logging.
    pub fn with_event_log(mut self, enabled: bool) -> Self {
        self.log_events = enabled;
        self
    }

    /// Run the simulation to completion (or to the slot cap) under `scheduler`.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> (SimOutcome, EventLog) {
        let p = self.platform.num_workers();
        let target = self.application.iterations;
        let t_prog = self.master.t_prog;
        let t_data = self.master.t_data;

        let mut log = if self.log_events { EventLog::enabled() } else { EventLog::disabled() };
        let mut dynamic = vec![WorkerDynamicState::fresh(); p];
        let mut current: Option<ActiveConfiguration> = None;
        let mut stats = SimStats::default();
        let mut completed: u64 = 0;
        let mut iteration_started_at: u64 = 0;
        let mut makespan: Option<u64> = None;
        let mut states: Vec<ProcState> = vec![ProcState::Up; p];

        log.push(0, EventKind::IterationStarted { iteration: 0 });

        let mut t: u64 = 0;
        while t < self.limits.max_slots {
            // 1. Read availability for this slot.
            for (q, s) in states.iter_mut().enumerate() {
                *s = self.availability.state(q, t);
            }

            // 2. Consequences of DOWN workers: they lose program, data and any
            //    in-flight transfer; if one of them is enrolled, the whole
            //    iteration restarts from scratch.
            for q in 0..p {
                if states[q].is_down() {
                    dynamic[q].crash();
                }
            }
            if let Some(cfg) = &current {
                let failed: Vec<usize> =
                    cfg.assignment.members().into_iter().filter(|&q| states[q].is_down()).collect();
                if !failed.is_empty() {
                    stats.iterations_aborted += 1;
                    log.push(t, EventKind::IterationAborted { failed_workers: failed });
                    current = None;
                }
            }

            // 3. Ask the scheduler what to do.
            let worker_views: Vec<WorkerView> =
                (0..p).map(|q| WorkerView { state: states[q], dynamic: dynamic[q] }).collect();
            let decision = {
                let view = SimView {
                    time: t,
                    iteration: completed,
                    completed_iterations: completed,
                    iteration_started_at,
                    workers: &worker_views,
                    platform: &self.platform,
                    application: &self.application,
                    master: &self.master,
                    current: current.as_ref(),
                };
                scheduler.decide(&view)
            };

            // 4. Apply the decision.
            if let Decision::NewConfiguration(assignment) = decision {
                let same = current.as_ref().is_some_and(|c| c.assignment == assignment);
                if !same && !assignment.is_empty() {
                    self.apply_new_configuration(
                        assignment,
                        &states,
                        &mut dynamic,
                        &mut current,
                        &mut stats,
                        &mut log,
                        t,
                    );
                }
            }

            // 5. Execute the slot.
            match current.as_mut() {
                None => stats.idle_slots += 1,
                Some(cfg) => {
                    let ready = cfg
                        .assignment
                        .entries()
                        .iter()
                        .all(|&(q, x)| dynamic[q].comm_slots_remaining(x, t_prog, t_data) == 0);
                    if !ready {
                        Self::run_communication_slot(
                            cfg,
                            &states,
                            &mut dynamic,
                            &self.master,
                            &mut stats,
                            &mut log,
                            t,
                        );
                    } else {
                        let all_up =
                            cfg.assignment.entries().iter().all(|&(q, _)| states[q].is_up());
                        if !all_up {
                            stats.stalled_slots += 1;
                            log.push(t, EventKind::ComputationSuspended);
                        } else {
                            let finished = cfg.advance_computation();
                            stats.computation_slots += 1;
                            log.push(
                                t,
                                EventKind::ComputationSlot {
                                    done: cfg.computation_done,
                                    workload: cfg.workload,
                                },
                            );
                            if finished {
                                log.push(t, EventKind::IterationCompleted { iteration: completed });
                                completed += 1;
                                scheduler.on_iteration_complete(completed);
                                if completed == target {
                                    makespan = Some(t + 1);
                                } else {
                                    for d in dynamic.iter_mut() {
                                        d.new_iteration();
                                    }
                                    current = None;
                                    iteration_started_at = t + 1;
                                    log.push(
                                        t + 1,
                                        EventKind::IterationStarted { iteration: completed },
                                    );
                                }
                            }
                        }
                    }
                }
            }

            t += 1;
            if makespan.is_some() {
                break;
            }
        }

        log.push(t, EventKind::RunFinished { success: makespan.is_some() });
        (
            SimOutcome {
                completed_iterations: completed,
                target_iterations: target,
                makespan,
                simulated_slots: t,
                stats,
            },
            log,
        )
    }

    /// Install a new configuration selected by the scheduler.
    #[allow(clippy::too_many_arguments)]
    fn apply_new_configuration(
        &self,
        assignment: Assignment,
        states: &[ProcState],
        dynamic: &mut [WorkerDynamicState],
        current: &mut Option<ActiveConfiguration>,
        stats: &mut SimStats,
        log: &mut EventLog,
        t: u64,
    ) {
        if let Err(e) = assignment.validate(&self.platform, &self.application) {
            panic!("scheduler produced an invalid assignment at slot {t}: {e}");
        }
        for &(q, _) in assignment.entries() {
            assert!(
                states[q].is_up(),
                "scheduler enrolled worker {q} at slot {t} but it is not UP"
            );
        }
        let proactive = current.is_some();
        if proactive {
            stats.proactive_changes += 1;
        }
        // Workers leaving the configuration lose their in-flight transfer
        // (interrupted communications restart from scratch); completed
        // messages and the program are kept.
        if let Some(old) = current.as_ref() {
            for &(q, _) in old.assignment.entries() {
                if !assignment.contains(q) {
                    dynamic[q].abort_partial_transfer();
                }
            }
        }
        stats.configurations_selected += 1;
        log.push(t, EventKind::ConfigurationSelected { assignment: assignment.clone(), proactive });
        *current = Some(ActiveConfiguration::new(assignment, &self.platform, t));
    }

    /// Serve one slot of master bandwidth to enrolled workers that need data.
    fn run_communication_slot(
        cfg: &ActiveConfiguration,
        states: &[ProcState],
        dynamic: &mut [WorkerDynamicState],
        master: &MasterSpec,
        stats: &mut SimStats,
        log: &mut EventLog,
        t: u64,
    ) {
        let mut channels = master.ncom;
        let mut any_transfer = false;
        for &(q, x) in cfg.assignment.entries() {
            if channels == 0 {
                break;
            }
            if !states[q].is_up() {
                continue;
            }
            if dynamic[q].comm_slots_remaining(x, master.t_prog, master.t_data) == 0 {
                continue;
            }
            let receiving_program = !dynamic[q].has_program;
            let message_done = dynamic[q].advance_transfer(master.t_prog, master.t_data);
            stats.transfer_slots += 1;
            any_transfer = true;
            channels -= 1;
            log.push(t, EventKind::TransferSlot { worker: q, program: receiving_program });
            if message_done {
                if receiving_program && dynamic[q].has_program {
                    log.push(t, EventKind::ProgramReceived { worker: q });
                } else {
                    log.push(
                        t,
                        EventKind::DataReceived {
                            worker: q,
                            total_messages: dynamic[q].data_messages,
                        },
                    );
                }
            }
        }
        if !any_transfer {
            stats.stalled_slots += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedAssignmentScheduler;
    use dg_availability::trace::ScriptedAvailability;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn reliable_platform(p: usize, speed: u64) -> Platform {
        Platform::reliable_homogeneous(p, speed)
    }

    fn always_up(p: usize, horizon: usize) -> ScriptedAvailability {
        ScriptedAvailability::new(vec![
            dg_availability::StateTrace::constant(ProcState::Up, horizon);
            p
        ])
    }

    #[test]
    fn reliable_run_has_exact_makespan() {
        // 3 workers, speed 2, 3 tasks (one each), Tprog=2, Tdata=1, ncom=3.
        // Comm: each worker needs 3 slots, all in parallel -> 3 slots.
        // Compute: 1 task * speed 2 -> 2 slots. Iteration = 5 slots; 2 iterations:
        // second iteration needs no program (kept) -> comm 1 slot, compute 2 -> 3.
        // Total = 8 slots.
        let platform = reliable_platform(3, 2);
        let app = ApplicationSpec::new(3, 2);
        let master = MasterSpec::from_slots(3, 2, 1);
        let availability = always_up(3, 10);
        let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
        let mut sched = FixedAssignmentScheduler::new(assignment);
        let sim = Simulator::from_parts(platform, app, master, availability).with_event_log(true);
        let (outcome, log) = sim.run(&mut sched);
        assert!(outcome.success());
        assert_eq!(outcome.makespan, Some(8));
        assert_eq!(outcome.completed_iterations, 2);
        assert_eq!(outcome.stats.iterations_aborted, 0);
        assert_eq!(outcome.stats.computation_slots, 4);
        // program (3 workers * 2) + data (3 workers * 1 * 2 iterations) = 12
        assert_eq!(outcome.stats.transfer_slots, 12);
        assert_eq!(log.iteration_completions().len(), 2);
    }

    #[test]
    fn ncom_bound_serializes_communication() {
        // Same as above but ncom = 1: the 3 workers' 3-slot downloads serialize
        // -> 9 slots of comm for iteration 1, 3 for iteration 2, plus 2+2 compute.
        let platform = reliable_platform(3, 2);
        let app = ApplicationSpec::new(3, 2);
        let master = MasterSpec::from_slots(1, 2, 1);
        let availability = always_up(3, 30);
        let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
        let mut sched = FixedAssignmentScheduler::new(assignment);
        let sim = Simulator::from_parts(platform, app, master, availability);
        let (outcome, _) = sim.run(&mut sched);
        assert_eq!(outcome.makespan, Some(9 + 2 + 3 + 2));
    }

    #[test]
    fn reclaimed_worker_suspends_computation() {
        // One worker, 1 task, speed 3, no communication. Worker is reclaimed for
        // 2 slots in the middle: makespan = 3 + 2.
        let platform = Platform::new(vec![WorkerSpec::new(3)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(1, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = ScriptedAvailability::from_codes(&["URRUUU"]);
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability).with_event_log(true);
        let (outcome, log) = sim.run(&mut sched);
        assert_eq!(outcome.makespan, Some(5));
        assert_eq!(outcome.stats.stalled_slots, 2);
        assert!(log.events().iter().any(|e| matches!(e.kind, EventKind::ComputationSuspended)));
    }

    #[test]
    fn down_worker_restarts_iteration_from_scratch() {
        // One worker, 1 task, speed 2, no communication. It goes DOWN at slot 1
        // after one slot of computation: that progress is lost and the iteration
        // restarts when it is UP again.
        let platform = Platform::new(vec![WorkerSpec::new(2)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(1, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = ScriptedAvailability::from_codes(&["UDUUU"]);
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability).with_event_log(true);
        let (outcome, log) = sim.run(&mut sched);
        // slot 0: compute (1/2); slot 1: DOWN -> abort; slot 2: re-enroll+compute;
        // slot 3: compute -> done at end of slot 3 -> makespan 4.
        assert_eq!(outcome.makespan, Some(4));
        assert_eq!(outcome.stats.iterations_aborted, 1);
        assert!(log.events().iter().any(|e| matches!(e.kind, EventKind::IterationAborted { .. })));
    }

    #[test]
    fn down_worker_loses_program_and_data() {
        // Tprog=2, Tdata=1, one worker, 1 task, speed 1.
        // Slots 0-2: download program+data; slot 3: DOWN (loses everything);
        // slots 4-6: re-download; slot 7: compute. Makespan 8.
        let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(1, 1);
        let master = MasterSpec::from_slots(1, 2, 1);
        let availability = ScriptedAvailability::from_codes(&["UUUDUUUUU"]);
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability);
        let (outcome, _) = sim.run(&mut sched);
        assert_eq!(outcome.makespan, Some(8));
        assert_eq!(outcome.stats.transfer_slots, 6);
    }

    #[test]
    fn failed_run_reports_cap() {
        // The only worker is always DOWN after slot 0 -> the run cannot finish.
        let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(1, 1);
        let master = MasterSpec::from_slots(1, 1, 1);
        let availability = ScriptedAvailability::from_codes(&["UD"]);
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability)
            .with_limits(SimulationLimits::with_max_slots(100));
        let (outcome, _) = sim.run(&mut sched);
        assert!(!outcome.success());
        assert_eq!(outcome.simulated_slots, 100);
        assert_eq!(outcome.completed_iterations, 0);
    }

    #[test]
    fn program_is_kept_across_iterations_but_data_is_not() {
        // 1 worker, 2 tasks (both on it), 2 iterations, Tprog=3, Tdata=2, speed 1.
        // Iter 1: comm 3 + 2*2 = 7, compute 2 -> 9 slots.
        // Iter 2: comm 2*2 = 4 (program kept), compute 2 -> 6 slots. Total 15.
        let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(2, 2);
        let master = MasterSpec::from_slots(1, 3, 2);
        let availability = always_up(1, 30);
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 2)]));
        let sim = Simulator::from_parts(platform, app, master, availability);
        let (outcome, _) = sim.run(&mut sched);
        assert_eq!(outcome.makespan, Some(15));
    }

    #[test]
    #[should_panic(expected = "invalid assignment")]
    fn invalid_assignment_panics() {
        let platform = reliable_platform(2, 1);
        let app = ApplicationSpec::new(3, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = always_up(2, 10);
        // Assignment only places 2 of the 3 tasks.
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1), (1, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability);
        let _ = sim.run(&mut sched);
    }

    #[test]
    #[should_panic(expected = "Σ µ_q < m")]
    fn infeasible_application_rejected() {
        let platform =
            Platform::new(vec![WorkerSpec::with_capacity(1, 1)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(2, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = always_up(1, 10);
        let _ = Simulator::from_parts(platform, app, master, availability);
    }
}
