//! The simulation engine: slot-stepped and event-driven execution modes.
//!
//! Both modes implement exactly the same execution model (Section III of the
//! paper) and produce byte-identical [`SimOutcome`]s for the same inputs:
//!
//! * [`SimMode::SlotStepped`] executes every time-slot, as the paper's
//!   evaluation describes — simple, but most slots of a long run change
//!   nothing (a configuration computing undisturbed, every worker reclaimed,
//!   no configuration installable).
//! * [`SimMode::EventDriven`] (the default) executes a slot, classifies the
//!   span that follows it, and jumps straight to the next *event* — the next
//!   availability transition of any worker, the completion of the current
//!   computation phase, or a scheduler re-evaluation point declared through
//!   [`crate::view::Reevaluation`] — accounting for the skipped, provably
//!   unchanged slots in bulk. Wake-ups are ordered by a deterministic
//!   min-heap ([`crate::queue::WakeQueue`]).
//!
//! The number of actually executed slots is reported per run in
//! [`EngineReport`]; Table I/II-style campaigns become event-bound instead of
//! slot-bound, which is what makes the paper's 10⁶-slot caps affordable.

use crate::assignment::Assignment;
use crate::config::ActiveConfiguration;
use crate::events::{EventKind, EventLog};
use crate::metrics::{SimOutcome, SimStats};
use crate::queue::{WakeEvent, WakeQueue};
use crate::view::{Decision, Scheduler, SimView, WorkerView};
use crate::worker_state::WorkerStateTable;
use dg_availability::trace::AvailabilityModel;
use dg_availability::ProcState;
use dg_platform::{ApplicationSpec, MasterSpec, Platform, Scenario};
use serde::{Deserialize, Serialize};

/// How the simulator advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimMode {
    /// Execute every time-slot. The paper's literal loop; kept as an escape
    /// hatch for slot-by-slot inspection (e.g. the Figure 1 trace) and as the
    /// reference the event-driven mode is tested against.
    SlotStepped,
    /// Jump from event to event, skipping slots during which nothing can
    /// change. Produces byte-identical [`SimOutcome`]s in far fewer engine
    /// iterations.
    #[default]
    EventDriven,
}

impl std::fmt::Display for SimMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimMode::SlotStepped => write!(f, "slot"),
            SimMode::EventDriven => write!(f, "event"),
        }
    }
}

impl std::str::FromStr for SimMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "slot" | "slot-stepped" | "slotstepped" => Ok(SimMode::SlotStepped),
            "event" | "event-driven" | "eventdriven" => Ok(SimMode::EventDriven),
            other => Err(format!("unknown engine mode '{other}' (expected 'slot' or 'event')")),
        }
    }
}

/// Error returned when [`SimulationLimits`] are constructed from invalid
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLimits {
    /// The rejected slot-cap value.
    pub max_slots: u64,
}

impl std::fmt::Display for InvalidLimits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid simulation limits: the slot cap must be positive (got {})",
            self.max_slots
        )
    }
}

impl std::error::Error for InvalidLimits {}

/// Limits bounding a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationLimits {
    /// Maximum number of time-slots to simulate before declaring the run
    /// failed. The paper's evaluation uses 10⁶.
    pub max_slots: u64,
}

impl Default for SimulationLimits {
    fn default() -> Self {
        SimulationLimits { max_slots: 1_000_000 }
    }
}

impl SimulationLimits {
    /// Limits with the given slot cap.
    ///
    /// # Errors
    /// Returns [`InvalidLimits`] if `max_slots` is zero: a run must be allowed
    /// to simulate at least one slot.
    pub fn with_max_slots(max_slots: u64) -> Result<Self, InvalidLimits> {
        if max_slots == 0 {
            return Err(InvalidLimits { max_slots });
        }
        Ok(SimulationLimits { max_slots })
    }
}

/// Per-run engine telemetry, reported alongside the [`SimOutcome`].
///
/// Deliberately *not* part of [`SimOutcome`]: the outcome of a run is a
/// property of the simulated system and must be identical across engine
/// modes, while this report describes how hard the engine worked to produce
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineReport {
    /// The mode the run executed under.
    pub mode: SimMode,
    /// Number of slots the engine actually executed (availability read,
    /// scheduler consulted, slot semantics applied). Equals
    /// [`EngineReport::simulated_slots`] in slot-stepped mode.
    pub executed_slots: u64,
    /// Number of slots of simulated time the run covered.
    pub simulated_slots: u64,
}

impl EngineReport {
    /// Slots the engine skipped over (zero in slot-stepped mode).
    pub fn skipped_slots(&self) -> u64 {
        self.simulated_slots - self.executed_slots
    }
}

/// What an executed slot did — and therefore what kind of span follows it
/// until the next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotPhase {
    /// The application completed during this slot.
    Finished,
    /// An iteration completed during this slot; the next one starts at `t+1`.
    IterationBoundary,
    /// No configuration is installed and none could be started.
    Idle,
    /// The installed configuration received at least one slot of transfer.
    ActiveComm {
        /// Slots until the earliest in-flight message completes, when no
        /// message completed during this slot (the span until then is pure
        /// linear transfer progress). `None` when a message completed — the
        /// channel allocation may reshuffle at the next slot.
        boundary: Option<u64>,
    },
    /// Outstanding communication, but no enrolled worker could receive.
    StalledComm,
    /// Computation advanced; `remaining > 0` slots are still needed.
    Computing {
        /// Lock-step slots still needed after this slot.
        remaining: u64,
    },
    /// Ready to compute, but an enrolled worker is `RECLAIMED`.
    Suspended,
}

/// Memoized outcome of one relevance walk: `None` = not computed yet for
/// this context, `Some(None)` = no relevant transition ever again,
/// `Some(Some((slot, state)))` = the next relevant transition.
type CachedTransition = Option<Option<(u64, ProcState)>>;

/// Mutable per-run state shared by both engine modes.
struct RunState {
    /// Per-worker holdings in struct-of-arrays layout: per-slot sweeps touch
    /// one field of every worker, not every field of one worker.
    dynamic: WorkerStateTable,
    current: Option<ActiveConfiguration>,
    stats: SimStats,
    completed: u64,
    iteration_started_at: u64,
    makespan: Option<u64>,
    states: Vec<ProcState>,
    log: EventLog,
    /// Workers served during the last communication slot (scratch buffer;
    /// the event engine uses it to bulk-advance skipped transfer slots).
    served: Vec<usize>,
    /// Per-slot scheduler view of the fleet (scratch buffer, rebuilt each
    /// executed slot — at 10⁴–10⁵ workers a fresh allocation per slot would
    /// dominate the engine).
    views: Vec<WorkerView>,
}

/// The discrete-event simulator.
///
/// A `Simulator` owns the availability realization for one trial and is
/// consumed by [`Simulator::run`], which drives a [`Scheduler`] until the
/// application completes or the slot cap is reached. The engine mode
/// (event-driven by default) is selected with [`Simulator::with_mode`].
pub struct Simulator<A: AvailabilityModel> {
    platform: Platform,
    application: ApplicationSpec,
    master: MasterSpec,
    availability: A,
    limits: SimulationLimits,
    log_events: bool,
    completion_log: bool,
    mode: SimMode,
}

impl<A: AvailabilityModel> Simulator<A> {
    /// Build a simulator from a scenario and an availability realization.
    pub fn new(scenario: &Scenario, availability: A) -> Self {
        Simulator::from_parts(
            scenario.platform.clone(),
            scenario.application,
            scenario.master,
            availability,
        )
    }

    /// Build a simulator from explicit components.
    ///
    /// # Panics
    /// Panics if the availability model and the platform disagree on the
    /// number of workers, or if the platform cannot hold the application
    /// (`Σ µ_q < m`).
    pub fn from_parts(
        platform: Platform,
        application: ApplicationSpec,
        master: MasterSpec,
        availability: A,
    ) -> Self {
        assert_eq!(
            availability.num_procs(),
            platform.num_workers(),
            "availability model and platform must describe the same workers"
        );
        assert!(
            platform.total_capacity(application.tasks_per_iteration)
                >= application.tasks_per_iteration,
            "platform cannot hold the application: Σ µ_q < m"
        );
        Simulator {
            platform,
            application,
            master,
            availability,
            limits: SimulationLimits::default(),
            log_events: false,
            completion_log: false,
            mode: SimMode::default(),
        }
    }

    /// Set the slot cap and other limits.
    pub fn with_limits(mut self, limits: SimulationLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enable or disable detailed event logging.
    ///
    /// Note that the event-driven engine executes (and therefore logs) only
    /// the slots at which something can change; for a complete slot-by-slot
    /// log combine this with [`SimMode::SlotStepped`].
    pub fn with_event_log(mut self, enabled: bool) -> Self {
        self.log_events = enabled;
        self
    }

    /// Record only iteration-completion events, keeping memory flat on long
    /// runs. A full event log ([`Simulator::with_event_log`]) takes
    /// precedence when both are requested.
    pub fn with_completion_log(mut self, enabled: bool) -> Self {
        self.completion_log = enabled;
        self
    }

    /// Select the engine mode (event-driven by default).
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// Run the simulation to completion (or to the slot cap) under `scheduler`.
    pub fn run(self, scheduler: &mut dyn Scheduler) -> (SimOutcome, EventLog) {
        let (outcome, log, _) = self.run_with_report(scheduler);
        (outcome, log)
    }

    /// Run the simulation and additionally report how many slots the engine
    /// actually executed (see [`EngineReport`]).
    pub fn run_with_report(
        mut self,
        scheduler: &mut dyn Scheduler,
    ) -> (SimOutcome, EventLog, EngineReport) {
        let p = self.platform.num_workers();
        let mut st = RunState {
            dynamic: WorkerStateTable::fresh(p),
            current: None,
            stats: SimStats::default(),
            completed: 0,
            iteration_started_at: 0,
            makespan: None,
            states: vec![ProcState::Up; p],
            log: if self.log_events {
                EventLog::enabled()
            } else if self.completion_log {
                EventLog::completions_only()
            } else {
                EventLog::disabled()
            },
            served: Vec::new(),
            views: Vec::with_capacity(p),
        };
        st.log.push(0, EventKind::IterationStarted { iteration: 0 });

        let (simulated, executed) = match self.mode {
            SimMode::SlotStepped => self.run_slot_stepped(&mut st, scheduler),
            SimMode::EventDriven => self.run_event_driven(&mut st, scheduler),
        };

        st.log.push(simulated, EventKind::RunFinished { success: st.makespan.is_some() });
        let outcome = SimOutcome {
            completed_iterations: st.completed,
            target_iterations: self.application.iterations,
            makespan: st.makespan,
            simulated_slots: simulated,
            stats: st.stats,
        };
        let report =
            EngineReport { mode: self.mode, executed_slots: executed, simulated_slots: simulated };
        (outcome, st.log, report)
    }

    /// The reference engine: execute every slot up to completion or the cap.
    /// Returns `(simulated_slots, executed_slots)`.
    fn run_slot_stepped(&mut self, st: &mut RunState, scheduler: &mut dyn Scheduler) -> (u64, u64) {
        let mut t: u64 = 0;
        let mut executed: u64 = 0;
        while t < self.limits.max_slots {
            let _ = self.execute_slot(st, scheduler, t);
            executed += 1;
            t += 1;
            if st.makespan.is_some() {
                break;
            }
        }
        (t, executed)
    }

    /// The event-driven engine: execute a slot, then jump to the earliest
    /// instant at which the simulation state can change again, accounting for
    /// the skipped slots in bulk. Returns `(simulated_slots, executed_slots)`.
    fn run_event_driven(&mut self, st: &mut RunState, scheduler: &mut dyn Scheduler) -> (u64, u64) {
        let p = self.platform.num_workers();
        let cap = self.limits.max_slots;
        let reeval = scheduler.reevaluation();
        let mut queue = WakeQueue::new();
        // Memoized results of `next_relevant_transition`, per worker and per
        // relevance context (member? idle? holding anything? — 8 combinations).
        // A worker's realization is immutable, so a computed "next relevant
        // transition" stays correct for the same context until time passes it;
        // `Some(None)` ("never again relevant") stays correct forever. This
        // makes the relevance walk amortized O(1) per executed slot instead of
        // re-scanning the same irrelevant churn at every step.
        let mut relevance_cache: Vec<[CachedTransition; 8]> = vec![[None; 8]; p];
        let mut t: u64 = 0;
        let mut executed: u64 = 0;
        while t < cap {
            let phase = self.execute_slot(st, scheduler, t);
            executed += 1;
            if st.makespan.is_some() {
                t += 1;
                break;
            }

            // Does the very next slot need executing regardless of events?
            let step_next = match phase {
                // `Finished` sets the makespan, handled above.
                SlotPhase::Finished => unreachable!("finished runs exit before classification"),
                // A fresh iteration's first decision: the world changes at
                // t+1 by construction.
                SlotPhase::IterationBoundary => true,
                // Mid-message transfer progress is linear until the earliest
                // served message completes; a completed message may reshuffle
                // the channel allocation at the very next slot.
                SlotPhase::ActiveComm { boundary } => match boundary {
                    Some(b) if !reeval.during_transfer => {
                        queue.push(WakeEvent::completion(t + b));
                        false
                    }
                    _ => true,
                },
                SlotPhase::Computing { remaining } => {
                    queue.push(WakeEvent::completion(t + remaining));
                    reeval.during_computation
                }
                SlotPhase::Suspended | SlotPhase::StalledComm => reeval.during_stall,
                SlotPhase::Idle => reeval.while_idle,
            };
            if step_next {
                queue.push(WakeEvent::reevaluate(t + 1));
            } else {
                let idle = st.current.is_none();
                for (q, cached) in relevance_cache.iter_mut().enumerate() {
                    let member = st.current.as_ref().is_some_and(|cfg| cfg.assignment.contains(q));
                    let holds_anything = st.dynamic.holds_anything(q);
                    let ctx = usize::from(member)
                        | usize::from(idle) << 1
                        | usize::from(holds_anything) << 2;
                    let next = match cached[ctx] {
                        // "Never relevant again" holds forever for a context.
                        Some(None) => None,
                        // A future relevant transition stays the next one.
                        Some(Some((when, to))) if when > t => Some((when, to)),
                        _ => {
                            let result = self.next_relevant_transition(
                                q,
                                t,
                                st.states[q],
                                member,
                                idle,
                                reeval.on_outside_transitions,
                                holds_anything,
                            );
                            cached[ctx] = Some(result);
                            result
                        }
                    };
                    if let Some((when, to)) = next {
                        queue.push(WakeEvent::transition(when, q, to));
                    }
                }
            }
            let wake = queue.pop().map_or(cap, |e| e.time).min(cap);
            queue.clear();
            debug_assert!(wake > t, "wake-ups must move time forward");

            // The slots in (t, wake) are provably identical to slot t's span:
            // account for them in bulk exactly as the slot-stepper would.
            let skipped = wake - t - 1;
            if skipped > 0 {
                match phase {
                    SlotPhase::Computing { .. } => {
                        st.stats.computation_slots += skipped;
                        st.current
                            .as_mut()
                            .expect("a computing span has an installed configuration")
                            .advance_computation_bulk(skipped);
                    }
                    SlotPhase::ActiveComm { .. } => {
                        // Every skipped slot repeats this slot's allocation:
                        // the same workers each receive one transfer slot of
                        // their (unfinished) in-flight message.
                        st.stats.transfer_slots += skipped * st.served.len() as u64;
                        for &q in &st.served {
                            st.dynamic.add_partial_transfer(q, skipped);
                        }
                    }
                    SlotPhase::Idle => st.stats.idle_slots += skipped,
                    SlotPhase::Suspended | SlotPhase::StalledComm => {
                        st.stats.stalled_slots += skipped
                    }
                    SlotPhase::Finished | SlotPhase::IterationBoundary => {
                        unreachable!("these phases always execute the next slot")
                    }
                }
            }
            t = wake;
        }
        (t, executed)
    }

    /// Walk worker `q`'s availability transitions forward from `t` to the
    /// first one that can change anything about the current span, skipping
    /// churn the scheduler provably cannot react to.
    ///
    /// A transition is relevant when:
    /// * `q` is enrolled in the installed configuration (suspension, abort and
    ///   resumption all hinge on member states), or
    /// * `q` enters `DOWN` while holding program or data — the crash must be
    ///   applied at that slot, not lazily, or a later `UP` re-entry would
    ///   resurrect state the slot-stepper already destroyed, or
    /// * no configuration is installed and `q` enters `UP` — the only change
    ///   that can make a configuration installable (losing workers keeps an
    ///   infeasible `UP` set infeasible), or
    /// * the scheduler watches outside workers
    ///   ([`crate::view::Reevaluation::on_outside_transitions`]) and `q`
    ///   crosses the `UP` boundary, changing the candidate pool.
    ///
    /// Everything else (`RECLAIMED`/`DOWN` churn of empty-handed bystanders,
    /// `UP`-boundary crossings passive schedulers ignore) is skipped. The walk
    /// is bounded: after `MAX_IRRELEVANT_WALK` skipped transitions the next
    /// one is returned as a conservative wake-up — a spurious wake executes
    /// one extra slot and changes nothing.
    #[allow(clippy::too_many_arguments)]
    fn next_relevant_transition(
        &mut self,
        q: usize,
        t: u64,
        state_now: ProcState,
        member: bool,
        idle: bool,
        outside_matters: bool,
        holds_anything: bool,
    ) -> Option<(u64, ProcState)> {
        const MAX_IRRELEVANT_WALK: u32 = 1024;
        let mut from = state_now;
        let mut after = t;
        let mut walked = 0u32;
        loop {
            let (when, to) = self.availability.next_transition(q, after)?;
            let relevant = if member {
                true
            } else if to.is_down() && holds_anything {
                // While the worker holds nothing, passing through DOWN keeps
                // it holding nothing, so `holds_anything` is stable along the
                // walk; with holdings the walk stops here before they could
                // have been lost.
                true
            } else if idle {
                to.is_up()
            } else {
                outside_matters && (from.is_up() || to.is_up())
            };
            walked += 1;
            if relevant || walked >= MAX_IRRELEVANT_WALK {
                return Some((when, to));
            }
            from = to;
            after = when;
        }
    }

    /// Execute the full semantics of time-slot `t`: read availability, apply
    /// crash consequences, consult the scheduler, and run one slot of
    /// communication or computation. Both engine modes funnel through this
    /// single method, which is what guarantees identical outcomes.
    fn execute_slot(
        &mut self,
        st: &mut RunState,
        scheduler: &mut dyn Scheduler,
        t: u64,
    ) -> SlotPhase {
        let p = self.platform.num_workers();
        let target = self.application.iterations;
        let t_prog = self.master.t_prog;
        let t_data = self.master.t_data;

        // 1. Read availability for this slot.
        for (q, s) in st.states.iter_mut().enumerate() {
            *s = self.availability.state(q, t);
        }

        // 2. Consequences of DOWN workers: they lose program, data and any
        //    in-flight transfer; if one of them is enrolled, the whole
        //    iteration restarts from scratch.
        for q in 0..p {
            if st.states[q].is_down() {
                st.dynamic.crash(q);
            }
        }
        if let Some(cfg) = &st.current {
            if cfg.assignment.members_iter().any(|q| st.states[q].is_down()) {
                let failed: Vec<usize> =
                    cfg.assignment.members_iter().filter(|&q| st.states[q].is_down()).collect();
                st.stats.iterations_aborted += 1;
                st.log.push(t, EventKind::IterationAborted { failed_workers: failed });
                st.current = None;
            }
        }

        // 3. Ask the scheduler what to do.
        st.views.clear();
        let (states, dynamic, views) = (&st.states, &st.dynamic, &mut st.views);
        views.extend((0..p).map(|q| WorkerView { state: states[q], dynamic: dynamic.get(q) }));
        let decision = {
            let view = SimView {
                time: t,
                iteration: st.completed,
                completed_iterations: st.completed,
                iteration_started_at: st.iteration_started_at,
                workers: &st.views,
                platform: &self.platform,
                application: &self.application,
                master: &self.master,
                current: st.current.as_ref(),
            };
            scheduler.decide(&view)
        };

        // 4. Apply the decision.
        if let Decision::NewConfiguration(assignment) = decision {
            let same = st.current.as_ref().is_some_and(|c| c.assignment == assignment);
            if !same && !assignment.is_empty() {
                self.apply_new_configuration(assignment, st, t);
            }
        }

        // 5. Execute the slot.
        match st.current.as_mut() {
            None => {
                st.stats.idle_slots += 1;
                SlotPhase::Idle
            }
            Some(cfg) => {
                let ready = cfg
                    .assignment
                    .entries()
                    .iter()
                    .all(|&(q, x)| st.dynamic.comm_slots_remaining(q, x, t_prog, t_data) == 0);
                if !ready {
                    let boundary = Self::run_communication_slot(
                        cfg,
                        &st.states,
                        &mut st.dynamic,
                        &mut st.served,
                        &self.master,
                        &mut st.stats,
                        &mut st.log,
                        t,
                    );
                    if st.served.is_empty() {
                        SlotPhase::StalledComm
                    } else {
                        SlotPhase::ActiveComm { boundary }
                    }
                } else {
                    let all_up =
                        cfg.assignment.entries().iter().all(|&(q, _)| st.states[q].is_up());
                    if !all_up {
                        st.stats.stalled_slots += 1;
                        st.log.push(t, EventKind::ComputationSuspended);
                        SlotPhase::Suspended
                    } else {
                        let finished = cfg.advance_computation();
                        st.stats.computation_slots += 1;
                        st.log.push(
                            t,
                            EventKind::ComputationSlot {
                                done: cfg.computation_done,
                                workload: cfg.workload,
                            },
                        );
                        if finished {
                            st.log
                                .push(t, EventKind::IterationCompleted { iteration: st.completed });
                            st.completed += 1;
                            scheduler.on_iteration_complete(st.completed);
                            if st.completed == target {
                                st.makespan = Some(t + 1);
                                SlotPhase::Finished
                            } else {
                                st.dynamic.new_iteration_all();
                                st.current = None;
                                st.iteration_started_at = t + 1;
                                st.log.push(
                                    t + 1,
                                    EventKind::IterationStarted { iteration: st.completed },
                                );
                                SlotPhase::IterationBoundary
                            }
                        } else {
                            SlotPhase::Computing { remaining: cfg.remaining_computation() }
                        }
                    }
                }
            }
        }
    }

    /// Install a new configuration selected by the scheduler.
    fn apply_new_configuration(&self, assignment: Assignment, st: &mut RunState, t: u64) {
        if let Err(e) = assignment.validate(&self.platform, &self.application) {
            panic!("scheduler produced an invalid assignment at slot {t}: {e}");
        }
        for &(q, _) in assignment.entries() {
            assert!(
                st.states[q].is_up(),
                "scheduler enrolled worker {q} at slot {t} but it is not UP"
            );
        }
        let proactive = st.current.is_some();
        if proactive {
            st.stats.proactive_changes += 1;
        }
        // Workers leaving the configuration lose their in-flight transfer
        // (interrupted communications restart from scratch); completed
        // messages and the program are kept.
        if let Some(old) = st.current.as_ref() {
            for &(q, _) in old.assignment.entries() {
                if !assignment.contains(q) {
                    st.dynamic.abort_partial_transfer(q);
                }
            }
        }
        st.stats.configurations_selected += 1;
        st.log.push(
            t,
            EventKind::ConfigurationSelected { assignment: assignment.clone(), proactive },
        );
        st.current = Some(ActiveConfiguration::new(assignment, &self.platform, t));
    }

    /// Serve one slot of master bandwidth to enrolled workers that need data.
    ///
    /// Fills `served` with the workers that received a transfer slot (empty
    /// when nothing could progress, which counts as a stalled slot). Returns
    /// the number of slots until the earliest in-flight message of a served
    /// worker completes — during which the channel allocation provably
    /// repeats itself — or `None` when a message completed this very slot
    /// (the allocation may reshuffle at the next one).
    #[allow(clippy::too_many_arguments)]
    fn run_communication_slot(
        cfg: &ActiveConfiguration,
        states: &[ProcState],
        dynamic: &mut WorkerStateTable,
        served: &mut Vec<usize>,
        master: &MasterSpec,
        stats: &mut SimStats,
        log: &mut EventLog,
        t: u64,
    ) -> Option<u64> {
        let mut channels = master.ncom;
        let mut any_completion = false;
        let mut boundary = u64::MAX;
        served.clear();
        for &(q, x) in cfg.assignment.entries() {
            if channels == 0 {
                break;
            }
            if !states[q].is_up() {
                continue;
            }
            if dynamic.comm_slots_remaining(q, x, master.t_prog, master.t_data) == 0 {
                continue;
            }
            let receiving_program = !dynamic.get(q).has_program;
            let message_done = dynamic.advance_transfer(q, master.t_prog, master.t_data);
            stats.transfer_slots += 1;
            served.push(q);
            channels -= 1;
            log.push(t, EventKind::TransferSlot { worker: q, program: receiving_program });
            let after = dynamic.get(q);
            if message_done {
                any_completion = true;
                if receiving_program && after.has_program {
                    log.push(t, EventKind::ProgramReceived { worker: q });
                } else {
                    log.push(
                        t,
                        EventKind::DataReceived { worker: q, total_messages: after.data_messages },
                    );
                }
            } else {
                let full = if after.partial_is_program { master.t_prog } else { master.t_data };
                boundary = boundary.min(full - after.partial_transfer);
            }
        }
        if served.is_empty() {
            stats.stalled_slots += 1;
        }
        if any_completion || served.is_empty() {
            None
        } else {
            Some(boundary)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedAssignmentScheduler;
    use dg_availability::trace::ScriptedAvailability;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn reliable_platform(p: usize, speed: u64) -> Platform {
        Platform::reliable_homogeneous(p, speed)
    }

    fn always_up(p: usize, horizon: usize) -> ScriptedAvailability {
        ScriptedAvailability::new(vec![
            dg_availability::StateTrace::constant(ProcState::Up, horizon);
            p
        ])
    }

    #[test]
    fn reliable_run_has_exact_makespan() {
        // 3 workers, speed 2, 3 tasks (one each), Tprog=2, Tdata=1, ncom=3.
        // Comm: each worker needs 3 slots, all in parallel -> 3 slots.
        // Compute: 1 task * speed 2 -> 2 slots. Iteration = 5 slots; 2 iterations:
        // second iteration needs no program (kept) -> comm 1 slot, compute 2 -> 3.
        // Total = 8 slots.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = reliable_platform(3, 2);
            let app = ApplicationSpec::new(3, 2);
            let master = MasterSpec::from_slots(3, 2, 1);
            let availability = always_up(3, 10);
            let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
            let mut sched = FixedAssignmentScheduler::new(assignment);
            let sim = Simulator::from_parts(platform, app, master, availability)
                .with_event_log(true)
                .with_mode(mode);
            let (outcome, log) = sim.run(&mut sched);
            assert!(outcome.success());
            assert_eq!(outcome.makespan, Some(8));
            assert_eq!(outcome.completed_iterations, 2);
            assert_eq!(outcome.stats.iterations_aborted, 0);
            assert_eq!(outcome.stats.computation_slots, 4);
            // program (3 workers * 2) + data (3 workers * 1 * 2 iterations) = 12
            assert_eq!(outcome.stats.transfer_slots, 12);
            assert_eq!(log.iteration_completions().len(), 2);
        }
    }

    #[test]
    fn completion_log_matches_full_log_completions() {
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
            let full = Simulator::from_parts(
                reliable_platform(3, 2),
                ApplicationSpec::new(3, 2),
                MasterSpec::from_slots(3, 2, 1),
                always_up(3, 10),
            )
            .with_event_log(true)
            .with_mode(mode);
            let (full_outcome, full_log) =
                full.run(&mut FixedAssignmentScheduler::new(assignment.clone()));
            let lean = Simulator::from_parts(
                reliable_platform(3, 2),
                ApplicationSpec::new(3, 2),
                MasterSpec::from_slots(3, 2, 1),
                always_up(3, 10),
            )
            .with_completion_log(true)
            .with_mode(mode);
            let (lean_outcome, lean_log) = lean.run(&mut FixedAssignmentScheduler::new(assignment));
            assert_eq!(full_outcome, lean_outcome);
            assert_eq!(full_log.iteration_completions(), lean_log.iteration_completions());
            // Only the completion events were kept.
            assert_eq!(lean_log.events().len(), lean_log.iteration_completions().len());
            assert!(full_log.events().len() > lean_log.events().len());
            // The makespan is exactly 1 + the last completion slot.
            assert_eq!(
                lean_outcome.makespan,
                lean_log.iteration_completions().last().map(|&t| t + 1)
            );
        }
    }

    #[test]
    fn ncom_bound_serializes_communication() {
        // Same as above but ncom = 1: the 3 workers' 3-slot downloads serialize
        // -> 9 slots of comm for iteration 1, 3 for iteration 2, plus 2+2 compute.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = reliable_platform(3, 2);
            let app = ApplicationSpec::new(3, 2);
            let master = MasterSpec::from_slots(1, 2, 1);
            let availability = always_up(3, 30);
            let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
            let mut sched = FixedAssignmentScheduler::new(assignment);
            let sim = Simulator::from_parts(platform, app, master, availability).with_mode(mode);
            let (outcome, _) = sim.run(&mut sched);
            assert_eq!(outcome.makespan, Some(9 + 2 + 3 + 2));
        }
    }

    #[test]
    fn reclaimed_worker_suspends_computation() {
        // One worker, 1 task, speed 3, no communication. Worker is reclaimed for
        // 2 slots in the middle: makespan = 3 + 2.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = Platform::new(vec![WorkerSpec::new(3)], vec![MarkovChain3::always_up()]);
            let app = ApplicationSpec::new(1, 1);
            let master = MasterSpec::from_slots(1, 0, 0);
            let availability = ScriptedAvailability::from_codes(&["URRUUU"]);
            let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
            let sim = Simulator::from_parts(platform, app, master, availability)
                .with_event_log(true)
                .with_mode(mode);
            let (outcome, log) = sim.run(&mut sched);
            assert_eq!(outcome.makespan, Some(5));
            assert_eq!(outcome.stats.stalled_slots, 2);
            assert!(log.events().iter().any(|e| matches!(e.kind, EventKind::ComputationSuspended)));
        }
    }

    #[test]
    fn down_worker_restarts_iteration_from_scratch() {
        // One worker, 1 task, speed 2, no communication. It goes DOWN at slot 1
        // after one slot of computation: that progress is lost and the iteration
        // restarts when it is UP again.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = Platform::new(vec![WorkerSpec::new(2)], vec![MarkovChain3::always_up()]);
            let app = ApplicationSpec::new(1, 1);
            let master = MasterSpec::from_slots(1, 0, 0);
            let availability = ScriptedAvailability::from_codes(&["UDUUU"]);
            let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
            let sim = Simulator::from_parts(platform, app, master, availability)
                .with_event_log(true)
                .with_mode(mode);
            let (outcome, log) = sim.run(&mut sched);
            // slot 0: compute (1/2); slot 1: DOWN -> abort; slot 2: re-enroll+compute;
            // slot 3: compute -> done at end of slot 3 -> makespan 4.
            assert_eq!(outcome.makespan, Some(4));
            assert_eq!(outcome.stats.iterations_aborted, 1);
            assert!(log
                .events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::IterationAborted { .. })));
        }
    }

    #[test]
    fn down_worker_loses_program_and_data() {
        // Tprog=2, Tdata=1, one worker, 1 task, speed 1.
        // Slots 0-2: download program+data; slot 3: DOWN (loses everything);
        // slots 4-6: re-download; slot 7: compute. Makespan 8.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
            let app = ApplicationSpec::new(1, 1);
            let master = MasterSpec::from_slots(1, 2, 1);
            let availability = ScriptedAvailability::from_codes(&["UUUDUUUUU"]);
            let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
            let sim = Simulator::from_parts(platform, app, master, availability).with_mode(mode);
            let (outcome, _) = sim.run(&mut sched);
            assert_eq!(outcome.makespan, Some(8));
            assert_eq!(outcome.stats.transfer_slots, 6);
        }
    }

    #[test]
    fn failed_run_reports_cap() {
        // The only worker is always DOWN after slot 0 -> the run cannot finish.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
            let app = ApplicationSpec::new(1, 1);
            let master = MasterSpec::from_slots(1, 1, 1);
            let availability = ScriptedAvailability::from_codes(&["UD"]);
            let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
            let sim = Simulator::from_parts(platform, app, master, availability)
                .with_limits(SimulationLimits::with_max_slots(100).unwrap())
                .with_mode(mode);
            let (outcome, _) = sim.run(&mut sched);
            assert!(!outcome.success());
            assert_eq!(outcome.simulated_slots, 100);
            assert_eq!(outcome.completed_iterations, 0);
        }
    }

    #[test]
    fn program_is_kept_across_iterations_but_data_is_not() {
        // 1 worker, 2 tasks (both on it), 2 iterations, Tprog=3, Tdata=2, speed 1.
        // Iter 1: comm 3 + 2*2 = 7, compute 2 -> 9 slots.
        // Iter 2: comm 2*2 = 4 (program kept), compute 2 -> 6 slots. Total 15.
        for mode in [SimMode::SlotStepped, SimMode::EventDriven] {
            let platform = Platform::new(vec![WorkerSpec::new(1)], vec![MarkovChain3::always_up()]);
            let app = ApplicationSpec::new(2, 2);
            let master = MasterSpec::from_slots(1, 3, 2);
            let availability = always_up(1, 30);
            let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 2)]));
            let sim = Simulator::from_parts(platform, app, master, availability).with_mode(mode);
            let (outcome, _) = sim.run(&mut sched);
            assert_eq!(outcome.makespan, Some(15));
        }
    }

    #[test]
    #[should_panic(expected = "invalid assignment")]
    fn invalid_assignment_panics() {
        let platform = reliable_platform(2, 1);
        let app = ApplicationSpec::new(3, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = always_up(2, 10);
        // Assignment only places 2 of the 3 tasks.
        let mut sched = FixedAssignmentScheduler::new(Assignment::new([(0, 1), (1, 1)]));
        let sim = Simulator::from_parts(platform, app, master, availability);
        let _ = sim.run(&mut sched);
    }

    #[test]
    #[should_panic(expected = "Σ µ_q < m")]
    fn infeasible_application_rejected() {
        let platform =
            Platform::new(vec![WorkerSpec::with_capacity(1, 1)], vec![MarkovChain3::always_up()]);
        let app = ApplicationSpec::new(2, 1);
        let master = MasterSpec::from_slots(1, 0, 0);
        let availability = always_up(1, 10);
        let _ = Simulator::from_parts(platform, app, master, availability);
    }

    #[test]
    fn with_max_slots_rejects_zero() {
        assert_eq!(SimulationLimits::with_max_slots(0), Err(InvalidLimits { max_slots: 0 }));
        assert_eq!(SimulationLimits::with_max_slots(5).unwrap().max_slots, 5);
        let msg = InvalidLimits { max_slots: 0 }.to_string();
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn sim_mode_parse_and_display() {
        assert_eq!("slot".parse::<SimMode>().unwrap(), SimMode::SlotStepped);
        assert_eq!("EVENT".parse::<SimMode>().unwrap(), SimMode::EventDriven);
        assert_eq!("event-driven".parse::<SimMode>().unwrap(), SimMode::EventDriven);
        assert!("warp".parse::<SimMode>().is_err());
        assert_eq!(SimMode::SlotStepped.to_string(), "slot");
        assert_eq!(SimMode::EventDriven.to_string(), "event");
        assert_eq!(SimMode::default(), SimMode::EventDriven);
    }

    /// Run one scripted scenario through both engines and assert byte-identical
    /// outcomes, returning the two engine reports.
    fn assert_modes_agree(
        codes: &[&str],
        assignment: Assignment,
        app: ApplicationSpec,
        master: MasterSpec,
        speeds: &[u64],
        cap: u64,
    ) -> (EngineReport, EngineReport) {
        let platform = Platform::new(
            speeds.iter().map(|&s| WorkerSpec::new(s)).collect(),
            vec![MarkovChain3::always_up(); speeds.len()],
        );
        let run = |mode: SimMode| {
            let availability = ScriptedAvailability::from_codes(codes);
            let mut sched = FixedAssignmentScheduler::new(assignment.clone());
            Simulator::from_parts(platform.clone(), app, master, availability)
                .with_limits(SimulationLimits::with_max_slots(cap).unwrap())
                .with_mode(mode)
                .run_with_report(&mut sched)
        };
        let (slot_outcome, _, slot_report) = run(SimMode::SlotStepped);
        let (event_outcome, _, event_report) = run(SimMode::EventDriven);
        assert_eq!(slot_outcome, event_outcome, "engine modes disagree");
        assert_eq!(slot_report.executed_slots, slot_report.simulated_slots);
        assert_eq!(event_report.simulated_slots, slot_report.simulated_slots);
        (slot_report, event_report)
    }

    #[test]
    fn event_mode_matches_slot_mode_on_scripted_scenarios() {
        // Mixed reclaimed/down periods across three workers.
        assert_modes_agree(
            &["UUUUUUURRUUUUUUUUUUU", "UURRUUUUUUUUDUUUUUUU", "UUUUUUUUUUUUUUUUUUUU"],
            Assignment::new([(0, 1), (1, 1), (2, 1)]),
            ApplicationSpec::new(3, 2),
            MasterSpec::from_slots(2, 2, 1),
            &[2, 3, 1],
            10_000,
        );
        // Long suspension in the middle of computation.
        assert_modes_agree(
            &["UUURRRRRRRRRRRRRRRRRRRRRRRRRRRRUUUUUUU"],
            Assignment::new([(0, 1)]),
            ApplicationSpec::new(1, 1),
            MasterSpec::from_slots(1, 1, 1),
            &[5],
            10_000,
        );
        // Failed run: worker goes down and never comes back.
        assert_modes_agree(
            &["UUUUD"],
            Assignment::new([(0, 1)]),
            ApplicationSpec::new(1, 1),
            MasterSpec::from_slots(1, 2, 2),
            &[9],
            1_000,
        );
    }

    #[test]
    fn event_mode_executes_far_fewer_slots() {
        // A long computation (speed 50) with one long reclaimed interruption:
        // the slot-stepper executes every slot, the event engine only the
        // handful of decision points.
        let codes = format!("UUU{}U", "R".repeat(200));
        let (slot, event) = assert_modes_agree(
            &[&codes, "UUUUUUUUUU"],
            Assignment::new([(0, 1), (1, 1)]),
            ApplicationSpec::new(2, 1),
            MasterSpec::from_slots(2, 1, 1),
            &[50, 1],
            100_000,
        );
        assert!(
            event.executed_slots * 10 < slot.executed_slots,
            "event engine executed {} of {} slots",
            event.executed_slots,
            slot.executed_slots
        );
        assert!(event.skipped_slots() > 0);
        assert_eq!(slot.skipped_slots(), 0);
    }

    #[test]
    fn event_mode_matches_slot_mode_on_markov_scenarios() {
        use dg_availability::rng::sub_rng;
        use dg_availability::trace::MarkovAvailability;
        // Seeded stochastic platforms: the two engines must agree on the exact
        // outcome because they share the availability realization.
        for seed in 0..10u64 {
            let mut rng = sub_rng(seed, 99);
            let chains: Vec<MarkovChain3> =
                (0..4).map(|_| MarkovChain3::sample_paper_model(&mut rng)).collect();
            let platform = Platform::new(
                vec![
                    WorkerSpec::new(2),
                    WorkerSpec::new(3),
                    WorkerSpec::new(4),
                    WorkerSpec::new(5),
                ],
                chains.clone(),
            );
            let run = |mode: SimMode| {
                let availability = MarkovAvailability::new(chains.clone(), seed, false);
                let mut sched =
                    FixedAssignmentScheduler::new(Assignment::new([(0, 1), (1, 1), (2, 1)]));
                Simulator::from_parts(
                    platform.clone(),
                    ApplicationSpec::new(3, 3),
                    MasterSpec::from_slots(2, 3, 1),
                    availability,
                )
                .with_limits(SimulationLimits::with_max_slots(50_000).unwrap())
                .with_mode(mode)
                .run_with_report(&mut sched)
            };
            let (slot_outcome, _, _) = run(SimMode::SlotStepped);
            let (event_outcome, _, event_report) = run(SimMode::EventDriven);
            assert_eq!(slot_outcome, event_outcome, "seed {seed}: engine modes disagree");
            assert!(event_report.executed_slots <= event_report.simulated_slots);
        }
    }
}
