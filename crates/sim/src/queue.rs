//! The event-driven engine's wake-up queue.
//!
//! The event-driven simulator does not advance time slot by slot: after
//! executing a slot it collects every instant at which the simulation state
//! can next change — availability transitions, the completion of the current
//! computation phase, forced scheduler re-evaluation points — into a
//! [`WakeQueue`] and jumps straight to the earliest one. The queue is a
//! deterministic min-[`BinaryHeap`]: events are ordered by time-slot, ties are
//! broken by [`WakeKind`] order and then by worker id, so the earliest wake-up
//! (and the reported cause of the jump) never depends on insertion order.

use dg_availability::ProcState;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Why the event-driven engine wants to wake up at a given slot.
///
/// Variants are declared in tie-break priority order: when several events
/// fall on the same slot, an availability transition outranks a phase
/// completion, which outranks a bare re-evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// A worker changes availability state at this slot.
    AvailabilityTransition {
        /// The state the worker transitions into.
        to: ProcState,
    },
    /// The installed configuration finishes its lock-step computation at this
    /// slot (assuming no member changes state before it).
    PhaseCompletion,
    /// The scheduler asked to be re-consulted at this slot
    /// (see [`crate::view::Reevaluation`]).
    Reevaluate,
}

impl WakeKind {
    /// Tie-break rank (lower wins) used when events share a time-slot.
    fn rank(&self) -> u8 {
        match self {
            WakeKind::AvailabilityTransition { .. } => 0,
            WakeKind::PhaseCompletion => 1,
            WakeKind::Reevaluate => 2,
        }
    }
}

/// A scheduled wake-up instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeEvent {
    /// Time-slot at which the engine must execute a full slot.
    pub time: u64,
    /// Why the wake-up was scheduled.
    pub kind: WakeKind,
    /// The worker the event concerns (0 for events not tied to a worker;
    /// participates in the deterministic tie-break).
    pub worker: usize,
}

impl WakeEvent {
    /// An availability-transition wake-up for `worker` entering `to`.
    pub fn transition(time: u64, worker: usize, to: ProcState) -> Self {
        WakeEvent { time, kind: WakeKind::AvailabilityTransition { to }, worker }
    }

    /// A computation phase-completion wake-up.
    pub fn completion(time: u64) -> Self {
        WakeEvent { time, kind: WakeKind::PhaseCompletion, worker: 0 }
    }

    /// A forced scheduler re-evaluation wake-up.
    pub fn reevaluate(time: u64) -> Self {
        WakeEvent { time, kind: WakeKind::Reevaluate, worker: 0 }
    }

    /// Total order: by time, then kind rank, then worker id.
    fn key(&self) -> (u64, u8, usize) {
        (self.time, self.kind.rank(), self.worker)
    }
}

impl Ord for WakeEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that the std max-heap pops the *earliest* event.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for WakeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap of [`WakeEvent`]s.
///
/// The engine refills the queue after every executed slot (the heap's backing
/// allocation is reused), pushes one candidate per possible cause, and pops
/// the earliest event to find the next slot worth executing.
#[derive(Debug, Default)]
pub struct WakeQueue {
    heap: BinaryHeap<WakeEvent>,
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WakeQueue::default()
    }

    /// Remove all events, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedule a wake-up.
    pub fn push(&mut self, event: WakeEvent) {
        self.heap.push(event);
    }

    /// Remove and return the earliest event (ties broken by kind, then
    /// worker id).
    pub fn pop(&mut self) -> Option<WakeEvent> {
        self.heap.pop()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_earliest_time_first() {
        let mut q = WakeQueue::new();
        q.push(WakeEvent::reevaluate(9));
        q.push(WakeEvent::completion(3));
        q.push(WakeEvent::transition(7, 2, ProcState::Down));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time, 3);
        assert_eq!(q.pop().unwrap().time, 7);
        assert_eq!(q.pop().unwrap().time, 9);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_kind_then_worker() {
        let mut q = WakeQueue::new();
        q.push(WakeEvent::reevaluate(5));
        q.push(WakeEvent::transition(5, 3, ProcState::Up));
        q.push(WakeEvent::completion(5));
        q.push(WakeEvent::transition(5, 1, ProcState::Down));
        let order: Vec<WakeEvent> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order[0], WakeEvent::transition(5, 1, ProcState::Down));
        assert_eq!(order[1], WakeEvent::transition(5, 3, ProcState::Up));
        assert_eq!(order[2], WakeEvent::completion(5));
        assert_eq!(order[3], WakeEvent::reevaluate(5));
    }

    #[test]
    fn insertion_order_never_matters() {
        let events = [
            WakeEvent::transition(2, 0, ProcState::Up),
            WakeEvent::transition(2, 1, ProcState::Down),
            WakeEvent::completion(2),
            WakeEvent::reevaluate(1),
        ];
        let mut forward = WakeQueue::new();
        let mut backward = WakeQueue::new();
        for e in events {
            forward.push(e);
        }
        for e in events.iter().rev() {
            backward.push(*e);
        }
        let f: Vec<_> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| backward.pop()).collect();
        assert_eq!(f, b);
        assert_eq!(f[0], WakeEvent::reevaluate(1));
    }

    #[test]
    fn clear_keeps_the_queue_usable() {
        let mut q = WakeQueue::new();
        q.push(WakeEvent::completion(1));
        q.clear();
        assert!(q.is_empty());
        q.push(WakeEvent::completion(2));
        assert_eq!(q.pop().unwrap().time, 2);
    }
}
