//! Owned decision contexts: the scheduler-facing [`SimView`] built from a
//! world state that lives **outside** the engine.
//!
//! The simulator assembles its views from private engine state, so until now
//! the only way to get a [`Scheduler`](crate::Scheduler) decision was to run a
//! simulation. A [`DecisionContext`] owns the same per-slot facts — clock,
//! iteration progress, per-worker availability and holdings, the installed
//! configuration — and lends them out as a [`SimView`], so external callers
//! (the `serve` daemon of `dg-experiments`, tests, tools) can consult a
//! scheduler about an arbitrary world state and get exactly the answer the
//! engine would get for the same view.

use crate::assignment::Assignment;
use crate::config::ActiveConfiguration;
use crate::view::{SimView, WorkerView};
use crate::worker_state::WorkerDynamicState;
use dg_availability::ProcState;
use dg_platform::{ApplicationSpec, MasterSpec, Platform};

/// An owned snapshot of everything a [`SimView`] borrows from the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionContext {
    /// Current time-slot.
    pub time: u64,
    /// Index of the iteration currently being executed (0-based).
    pub iteration: u64,
    /// Number of iterations already completed.
    pub completed_iterations: u64,
    /// Time-slot at which the current iteration began.
    pub iteration_started_at: u64,
    /// Per-worker availability state and holdings.
    pub workers: Vec<WorkerView>,
    /// The configuration currently executing the iteration, if any.
    pub current: Option<ActiveConfiguration>,
}

impl DecisionContext {
    /// A context at time 0 with the given availability states and no
    /// holdings, progress or installed configuration — the world the engine
    /// sees at its first decision point.
    pub fn fresh(states: &[ProcState]) -> Self {
        DecisionContext {
            time: 0,
            iteration: 0,
            completed_iterations: 0,
            iteration_started_at: 0,
            workers: states
                .iter()
                .map(|&state| WorkerView { state, dynamic: WorkerDynamicState::fresh() })
                .collect(),
            current: None,
        }
    }

    /// Install `assignment` as the current configuration, selected at the
    /// context's current time with no accumulated computation.
    pub fn install(&mut self, assignment: Assignment, platform: &Platform) {
        self.current = Some(ActiveConfiguration::new(assignment, platform, self.time));
    }

    /// Apply the engine's pre-decision consequences of `DOWN` workers
    /// (step 2 of the slot semantics): every `DOWN` worker loses its program,
    /// data and in-flight transfer, and a configuration with a `DOWN` member
    /// is aborted — the tightly-coupled iteration cannot survive it. Returns
    /// `true` if the installed configuration was aborted.
    ///
    /// The engine normalizes its state exactly like this before every
    /// [`Scheduler::decide`](crate::Scheduler::decide) call, so a context
    /// normalized at its current states yields the same view — and therefore
    /// the same decision — the engine would produce.
    pub fn normalize(&mut self) -> bool {
        for w in &mut self.workers {
            if w.state.is_down() {
                w.dynamic.crash();
            }
        }
        let aborted = match &self.current {
            Some(cfg) => cfg.assignment.members_iter().any(|q| self.workers[q].state.is_down()),
            None => false,
        };
        if aborted {
            self.current = None;
        }
        aborted
    }

    /// Borrow the context as the [`SimView`] handed to a scheduler.
    ///
    /// # Panics
    /// Panics if the context's worker count differs from the platform's.
    pub fn view<'a>(
        &'a self,
        platform: &'a Platform,
        application: &'a ApplicationSpec,
        master: &'a MasterSpec,
    ) -> SimView<'a> {
        assert_eq!(
            self.workers.len(),
            platform.num_workers(),
            "decision context must describe every platform worker"
        );
        SimView {
            time: self.time,
            iteration: self.iteration,
            completed_iterations: self.completed_iterations,
            iteration_started_at: self.iteration_started_at,
            workers: &self.workers,
            platform,
            application,
            master,
            current: self.current.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedAssignmentScheduler;
    use crate::view::{Decision, Scheduler};
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn fixture() -> (Platform, ApplicationSpec, MasterSpec) {
        (
            Platform::new(
                vec![WorkerSpec::new(1), WorkerSpec::new(2), WorkerSpec::new(3)],
                vec![MarkovChain3::always_up(); 3],
            ),
            ApplicationSpec::new(3, 10),
            MasterSpec::from_slots(2, 2, 1),
        )
    }

    #[test]
    fn fresh_context_views_like_the_engine_at_slot_zero() {
        let (platform, application, master) = fixture();
        let states = [ProcState::Up, ProcState::Reclaimed, ProcState::Up];
        let ctx = DecisionContext::fresh(&states);
        let view = ctx.view(&platform, &application, &master);
        assert_eq!(view.time, 0);
        assert_eq!(view.up_workers(), vec![0, 2]);
        assert!(view.current.is_none());
        assert_eq!(view.workers[1].dynamic, WorkerDynamicState::fresh());
        // A scheduler consulted through the view behaves normally.
        let a = Assignment::new([(0, 1), (2, 2)]);
        let mut fixed = FixedAssignmentScheduler::new(a.clone());
        assert_eq!(fixed.decide(&view), Decision::NewConfiguration(a));
    }

    #[test]
    fn install_and_normalize_mirror_the_engine_semantics() {
        let (platform, _application, _master) = fixture();
        let mut ctx = DecisionContext::fresh(&[ProcState::Up; 3]);
        ctx.time = 7;
        ctx.workers[1].dynamic.has_program = true;
        ctx.install(Assignment::new([(1, 1), (2, 2)]), &platform);
        let cfg = ctx.current.as_ref().unwrap();
        assert_eq!(cfg.selected_at, 7);
        assert_eq!(cfg.workload, Assignment::new([(1, 1), (2, 2)]).workload(&platform));
        // Nothing DOWN: normalize changes nothing.
        assert!(!ctx.normalize());
        assert!(ctx.current.is_some());
        // A DOWN member crashes its holdings and aborts the configuration.
        ctx.workers[1].state = ProcState::Down;
        assert!(ctx.normalize());
        assert!(ctx.current.is_none());
        assert_eq!(ctx.workers[1].dynamic, WorkerDynamicState::fresh());
        // A DOWN outsider only loses its holdings.
        ctx.install(Assignment::new([(2, 3)]), &platform);
        ctx.workers[0].dynamic.data_messages = 2;
        ctx.workers[0].state = ProcState::Down;
        assert!(!ctx.normalize());
        assert!(ctx.current.is_some());
        assert_eq!(ctx.workers[0].dynamic.data_messages, 0);
    }

    #[test]
    #[should_panic(expected = "every platform worker")]
    fn view_rejects_a_worker_count_mismatch() {
        let (platform, application, master) = fixture();
        let ctx = DecisionContext::fresh(&[ProcState::Up; 2]);
        let _ = ctx.view(&platform, &application, &master);
    }
}
