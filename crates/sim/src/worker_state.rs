//! Per-worker dynamic state tracked by the simulator.

use serde::{Deserialize, Serialize};

/// What a worker currently holds and what it is currently downloading.
///
/// This state persists across scheduler decisions (Section III-C):
///
/// * the application program, once fully received, is kept until the worker
///   goes `DOWN`;
/// * fully received task-data messages for the *current iteration* are kept
///   until the worker goes `DOWN` or the iteration ends, and can be reused if
///   the scheduler re-assigns tasks to the worker;
/// * a partially received message is lost if the worker goes `DOWN` or is
///   removed from the configuration (interrupted communications restart from
///   scratch), but survives the worker being temporarily `RECLAIMED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct WorkerDynamicState {
    /// `true` once the worker holds a complete copy of the application program.
    pub has_program: bool,
    /// Number of complete task-data messages received for the current iteration.
    pub data_messages: usize,
    /// Slots of transfer already performed on the in-flight message
    /// (program or data), if any.
    pub partial_transfer: u64,
    /// `true` if the in-flight message is the program, `false` if it is a data
    /// message. Meaningless when `partial_transfer == 0`.
    pub partial_is_program: bool,
}

impl WorkerDynamicState {
    /// A worker that holds nothing.
    pub fn fresh() -> Self {
        WorkerDynamicState::default()
    }

    /// Apply the consequences of the worker being `DOWN` during a slot: it
    /// loses the program, all task data and any in-flight transfer.
    pub fn crash(&mut self) {
        *self = WorkerDynamicState::fresh();
    }

    /// Drop the in-flight (partial) transfer, keeping completed messages.
    /// Used when the worker is removed from the configuration.
    pub fn abort_partial_transfer(&mut self) {
        self.partial_transfer = 0;
        self.partial_is_program = false;
    }

    /// Reset the per-iteration data (called at the start of a new iteration:
    /// each iteration needs fresh input data). The program is kept.
    pub fn new_iteration(&mut self) {
        self.data_messages = 0;
        self.abort_partial_transfer();
    }

    /// Number of communication slots the worker still needs before it can
    /// compute `assigned_tasks` tasks, given `t_prog`/`t_data` transfer times.
    /// In-flight progress counts toward the next message.
    pub fn comm_slots_remaining(&self, assigned_tasks: usize, t_prog: u64, t_data: u64) -> u64 {
        let prog = if self.has_program { 0 } else { t_prog };
        let missing_msgs = assigned_tasks.saturating_sub(self.data_messages) as u64;
        (prog + missing_msgs * t_data).saturating_sub(self.partial_transfer)
    }

    /// Advance the in-flight transfer by one slot. Returns `true` if a message
    /// completed during this slot.
    ///
    /// The worker downloads the program first (if missing), then data messages
    /// one by one. `t_prog` / `t_data` are the full transfer durations.
    pub fn advance_transfer(&mut self, t_prog: u64, t_data: u64) -> bool {
        if !self.has_program {
            if t_prog == 0 {
                self.has_program = true;
                // Fall through to data on the next call; this slot still counted
                // as a completed (zero-length) message.
                return true;
            }
            self.partial_is_program = true;
            self.partial_transfer += 1;
            if self.partial_transfer >= t_prog {
                self.has_program = true;
                self.partial_transfer = 0;
                return true;
            }
            return false;
        }
        // Data message.
        if t_data == 0 {
            self.data_messages += 1;
            return true;
        }
        self.partial_is_program = false;
        self.partial_transfer += 1;
        if self.partial_transfer >= t_data {
            self.data_messages += 1;
            self.partial_transfer = 0;
            return true;
        }
        false
    }
}

/// Struct-of-arrays storage for the dynamic state of a whole fleet.
///
/// At massive platform sizes (10⁴–10⁵ workers) the engine touches one field
/// of every worker per slot far more often than it touches every field of one
/// worker; splitting [`WorkerDynamicState`] into parallel columns keeps those
/// sweeps dense. Per-worker transition logic stays single-sourced in
/// [`WorkerDynamicState`]: the heavier operations load a worker into a scalar
/// state, delegate, and store it back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerStateTable {
    has_program: Vec<bool>,
    data_messages: Vec<usize>,
    partial_transfer: Vec<u64>,
    partial_is_program: Vec<bool>,
}

impl WorkerStateTable {
    /// A fleet of `p` workers that hold nothing.
    pub fn fresh(p: usize) -> Self {
        WorkerStateTable {
            has_program: vec![false; p],
            data_messages: vec![0; p],
            partial_transfer: vec![0; p],
            partial_is_program: vec![false; p],
        }
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.has_program.len()
    }

    /// `true` if the table tracks no workers.
    pub fn is_empty(&self) -> bool {
        self.has_program.is_empty()
    }

    /// The scalar dynamic state of worker `q`.
    pub fn get(&self, q: usize) -> WorkerDynamicState {
        WorkerDynamicState {
            has_program: self.has_program[q],
            data_messages: self.data_messages[q],
            partial_transfer: self.partial_transfer[q],
            partial_is_program: self.partial_is_program[q],
        }
    }

    /// Overwrite the dynamic state of worker `q`.
    pub fn set(&mut self, q: usize, d: WorkerDynamicState) {
        self.has_program[q] = d.has_program;
        self.data_messages[q] = d.data_messages;
        self.partial_transfer[q] = d.partial_transfer;
        self.partial_is_program[q] = d.partial_is_program;
    }

    /// `true` if worker `q` holds or is downloading anything — i.e. its state
    /// differs from [`WorkerDynamicState::fresh`].
    pub fn holds_anything(&self, q: usize) -> bool {
        self.has_program[q]
            || self.data_messages[q] > 0
            || self.partial_transfer[q] > 0
            || self.partial_is_program[q]
    }

    /// See [`WorkerDynamicState::crash`].
    pub fn crash(&mut self, q: usize) {
        self.set(q, WorkerDynamicState::fresh());
    }

    /// See [`WorkerDynamicState::abort_partial_transfer`].
    pub fn abort_partial_transfer(&mut self, q: usize) {
        self.partial_transfer[q] = 0;
        self.partial_is_program[q] = false;
    }

    /// Apply [`WorkerDynamicState::new_iteration`] to every worker.
    pub fn new_iteration_all(&mut self) {
        self.data_messages.fill(0);
        self.partial_transfer.fill(0);
        self.partial_is_program.fill(false);
    }

    /// See [`WorkerDynamicState::comm_slots_remaining`].
    pub fn comm_slots_remaining(
        &self,
        q: usize,
        assigned_tasks: usize,
        t_prog: u64,
        t_data: u64,
    ) -> u64 {
        self.get(q).comm_slots_remaining(assigned_tasks, t_prog, t_data)
    }

    /// See [`WorkerDynamicState::advance_transfer`].
    pub fn advance_transfer(&mut self, q: usize, t_prog: u64, t_data: u64) -> bool {
        let mut d = self.get(q);
        let completed = d.advance_transfer(t_prog, t_data);
        self.set(q, d);
        completed
    }

    /// Credit `slots` slots of transfer progress to worker `q` without message
    /// completions — the engine's bulk skip over uneventful transfer slots.
    pub fn add_partial_transfer(&mut self, q: usize, slots: u64) {
        self.partial_transfer[q] += slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_needs_everything() {
        let s = WorkerDynamicState::fresh();
        assert!(!s.has_program);
        assert_eq!(s.comm_slots_remaining(2, 5, 1), 7);
        assert_eq!(s.comm_slots_remaining(0, 5, 1), 5);
    }

    #[test]
    fn program_then_data_transfer_sequence() {
        let mut s = WorkerDynamicState::fresh();
        // Tprog = 2, Tdata = 1, 2 tasks: expect 4 slots total.
        assert!(!s.advance_transfer(2, 1));
        assert!(s.partial_is_program);
        assert!(s.advance_transfer(2, 1));
        assert!(s.has_program);
        assert_eq!(s.data_messages, 0);
        assert!(s.advance_transfer(2, 1));
        assert_eq!(s.data_messages, 1);
        assert!(s.advance_transfer(2, 1));
        assert_eq!(s.data_messages, 2);
        assert_eq!(s.comm_slots_remaining(2, 2, 1), 0);
    }

    #[test]
    fn comm_slots_remaining_counts_partial_progress() {
        let mut s = WorkerDynamicState::fresh();
        s.advance_transfer(3, 2); // one slot of the 3-slot program done
        assert_eq!(s.comm_slots_remaining(1, 3, 2), 4);
        s.abort_partial_transfer();
        assert_eq!(s.comm_slots_remaining(1, 3, 2), 5);
    }

    #[test]
    fn crash_loses_everything() {
        let mut s = WorkerDynamicState::fresh();
        for _ in 0..5 {
            s.advance_transfer(2, 1);
        }
        assert!(s.has_program);
        assert!(s.data_messages > 0);
        s.crash();
        assert_eq!(s, WorkerDynamicState::fresh());
    }

    #[test]
    fn new_iteration_keeps_program_drops_data() {
        let mut s = WorkerDynamicState::fresh();
        for _ in 0..4 {
            s.advance_transfer(2, 1);
        }
        assert!(s.has_program);
        assert_eq!(s.data_messages, 2);
        s.new_iteration();
        assert!(s.has_program);
        assert_eq!(s.data_messages, 0);
        assert_eq!(s.comm_slots_remaining(3, 2, 1), 3);
    }

    #[test]
    fn zero_length_transfers() {
        let mut s = WorkerDynamicState::fresh();
        assert!(s.advance_transfer(0, 0));
        assert!(s.has_program);
        assert!(s.advance_transfer(0, 0));
        assert_eq!(s.data_messages, 1);
        assert_eq!(s.comm_slots_remaining(1, 0, 0), 0);
    }

    #[test]
    fn excess_received_data_never_negative() {
        let mut s = WorkerDynamicState::fresh();
        s.has_program = true;
        s.data_messages = 4;
        assert_eq!(s.comm_slots_remaining(2, 5, 3), 0);
    }

    #[test]
    fn table_round_trips_scalar_states() {
        let mut table = WorkerStateTable::fresh(3);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        for q in 0..3 {
            assert_eq!(table.get(q), WorkerDynamicState::fresh());
            assert!(!table.holds_anything(q));
        }
        let mut scalar = WorkerDynamicState::fresh();
        for _ in 0..3 {
            let a = table.advance_transfer(1, 2, 1);
            let b = scalar.advance_transfer(2, 1);
            assert_eq!(a, b);
            assert_eq!(table.get(1), scalar);
            assert_eq!(
                table.comm_slots_remaining(1, 2, 2, 1),
                scalar.comm_slots_remaining(2, 2, 1)
            );
        }
        assert!(table.holds_anything(1));
        assert!(!table.holds_anything(0));
    }

    #[test]
    fn table_bulk_operations_match_scalar_ones() {
        let mut table = WorkerStateTable::fresh(2);
        for _ in 0..4 {
            table.advance_transfer(0, 2, 1);
            table.advance_transfer(1, 2, 1);
        }
        assert_eq!(table.get(0).data_messages, 2);

        let mut aborted = table.get(1);
        table.add_partial_transfer(1, 3);
        assert_eq!(table.get(1).partial_transfer, aborted.partial_transfer + 3);
        table.abort_partial_transfer(1);
        aborted.abort_partial_transfer();
        assert_eq!(table.get(1), aborted);

        let mut expected = [table.get(0), table.get(1)];
        table.new_iteration_all();
        for (q, e) in expected.iter_mut().enumerate() {
            e.new_iteration();
            assert_eq!(table.get(q), *e);
        }

        table.advance_transfer(0, 0, 1);
        table.advance_transfer(0, 0, 1);
        assert!(table.holds_anything(0));
        table.crash(0);
        assert_eq!(table.get(0), WorkerDynamicState::fresh());
    }
}
