//! Task-to-worker assignments (configurations).

use dg_platform::{ApplicationSpec, Platform};
use serde::{Deserialize, Serialize};

/// A mapping of the `m` tasks of one iteration onto a set of enrolled workers.
///
/// The assignment lists each enrolled worker exactly once with a positive task
/// count; the counts sum to `m`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Assignment {
    entries: Vec<(usize, usize)>,
}

impl Assignment {
    /// Build an assignment from `(worker index, task count)` pairs.
    ///
    /// Entries with a zero task count are dropped; duplicate worker indices are
    /// merged. The result is kept sorted by worker index so that assignments
    /// can be compared structurally.
    pub fn new(entries: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut merged: Vec<(usize, usize)> = entries.into_iter().filter(|&(_, x)| x > 0).collect();
        merged.sort_unstable_by_key(|&(q, _)| q);
        merged.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        Assignment { entries: merged }
    }

    /// The empty assignment (no enrolled worker).
    pub fn empty() -> Self {
        Assignment { entries: Vec::new() }
    }

    /// `(worker, task count)` pairs, sorted by worker index.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Enrolled worker indices, sorted.
    pub fn members(&self) -> Vec<usize> {
        self.members_iter().collect()
    }

    /// Enrolled worker indices, sorted, without allocating.
    pub fn members_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(q, _)| q)
    }

    /// Task counts in the same order as [`Assignment::members`].
    pub fn task_counts(&self) -> Vec<usize> {
        self.task_counts_iter().collect()
    }

    /// Task counts in the same order as [`Assignment::members_iter`], without
    /// allocating.
    pub fn task_counts_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(_, x)| x)
    }

    /// Number of enrolled workers `k`.
    pub fn num_workers(&self) -> usize {
        self.entries.len()
    }

    /// Total number of assigned tasks.
    pub fn total_tasks(&self) -> usize {
        self.entries.iter().map(|&(_, x)| x).sum()
    }

    /// Task count assigned to worker `q` (0 if not enrolled).
    pub fn tasks_of(&self, q: usize) -> usize {
        self.entries.binary_search_by_key(&q, |&(w, _)| w).map_or(0, |i| self.entries[i].1)
    }

    /// `true` if worker `q` is enrolled.
    pub fn contains(&self, q: usize) -> bool {
        self.tasks_of(q) > 0
    }

    /// `true` if no worker is enrolled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lock-step computation workload of the configuration,
    /// `W = max_q x_q·w_q` (Section III-C), in slots of simultaneous `UP` time.
    pub fn workload(&self, platform: &Platform) -> u64 {
        self.entries.iter().map(|&(q, x)| platform.worker(q).compute_slots(x)).max().unwrap_or(0)
    }

    /// Check the structural validity of the assignment for a platform and
    /// application: every worker index exists, respects its capacity `µ_q`, and
    /// the task counts sum to `m`. Returns a human-readable error otherwise.
    pub fn validate(
        &self,
        platform: &Platform,
        application: &ApplicationSpec,
    ) -> Result<(), String> {
        let m = application.tasks_per_iteration;
        if self.total_tasks() != m {
            return Err(format!(
                "assignment places {} tasks but the iteration has {m}",
                self.total_tasks()
            ));
        }
        for &(q, x) in &self.entries {
            if q >= platform.num_workers() {
                return Err(format!(
                    "worker {q} does not exist (platform has {})",
                    platform.num_workers()
                ));
            }
            if !platform.worker(q).can_hold(x) {
                return Err(format!(
                    "worker {q} is assigned {x} tasks but its capacity is {:?}",
                    platform.worker(q).max_tasks
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            vec![
                WorkerSpec::new(1),
                WorkerSpec::new(2),
                WorkerSpec::new(3),
                WorkerSpec::with_capacity(4, 1),
                WorkerSpec::new(5),
            ],
            vec![MarkovChain3::always_up(); 5],
        )
    }

    #[test]
    fn construction_merges_and_sorts() {
        let a = Assignment::new([(3, 1), (1, 2), (3, 1), (0, 0)]);
        assert_eq!(a.entries(), &[(1, 2), (3, 2)]);
        assert_eq!(a.members(), vec![1, 3]);
        assert_eq!(a.task_counts(), vec![2, 2]);
        assert_eq!(a.members_iter().collect::<Vec<_>>(), a.members());
        assert_eq!(a.task_counts_iter().collect::<Vec<_>>(), a.task_counts());
        assert_eq!(a.total_tasks(), 4);
        assert_eq!(a.tasks_of(1), 2);
        assert_eq!(a.tasks_of(0), 0);
        assert!(a.contains(3));
        assert!(!a.contains(0));

        // Runs of more than two duplicates merge into one entry.
        let b = Assignment::new([(5, 1), (5, 2), (2, 1), (5, 3)]);
        assert_eq!(b.entries(), &[(2, 1), (5, 6)]);
    }

    #[test]
    fn workload_matches_figure1_example() {
        // Figure 1: w_i = i, two tasks on P2 (w=2), two on P3 (w=3), one on P4 (w=4)
        // -> workload max(4, 6, 4) = 6.
        let a = Assignment::new([(1, 2), (2, 2), (3, 1)]);
        assert_eq!(a.workload(&platform()), 6);
    }

    #[test]
    fn empty_assignment() {
        let a = Assignment::empty();
        assert!(a.is_empty());
        assert_eq!(a.workload(&platform()), 0);
        assert_eq!(a.total_tasks(), 0);
    }

    #[test]
    fn validation_checks_total_and_capacity() {
        let p = platform();
        let app = ApplicationSpec::new(5, 10);
        let good = Assignment::new([(0, 2), (1, 2), (2, 1)]);
        assert!(good.validate(&p, &app).is_ok());

        let wrong_total = Assignment::new([(0, 2), (1, 2)]);
        assert!(wrong_total.validate(&p, &app).is_err());

        let over_capacity = Assignment::new([(3, 2), (0, 3)]);
        assert!(over_capacity.validate(&p, &app).is_err());

        let bad_worker = Assignment::new([(9, 5)]);
        assert!(bad_worker.validate(&p, &app).is_err());
    }

    #[test]
    fn equality_is_structural() {
        let a = Assignment::new([(2, 1), (0, 4)]);
        let b = Assignment::new([(0, 4), (2, 1)]);
        assert_eq!(a, b);
        let c = Assignment::new([(0, 4), (2, 2)]);
        assert_ne!(a, c);
    }
}
