//! The scheduler-facing view of the simulation and the scheduler interface.

use crate::assignment::Assignment;
use crate::config::ActiveConfiguration;
use crate::worker_state::WorkerDynamicState;
use dg_availability::ProcState;
use dg_platform::{ApplicationSpec, MasterSpec, Platform};

/// Per-worker information visible to the scheduler at the current slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerView {
    /// Availability state of the worker during the current slot.
    pub state: ProcState,
    /// What the worker currently holds (program, data, in-flight transfer).
    pub dynamic: WorkerDynamicState,
}

/// A read-only snapshot handed to the scheduler once per time-slot.
///
/// The view deliberately exposes **no future availability information**: the
/// on-line heuristics only see the present state of each worker, the static
/// platform description (including the per-worker Markov chains, which are the
/// published "availability statistics" the heuristics are allowed to use) and
/// the progress of the current iteration.
///
/// The view is `Copy` and — holding only shared references to immutable
/// state — `Send + Sync`, so a parallel candidate scan can share one `&SimView`
/// across the scoped threads of a single decision. Anything *mutable* a probe
/// needs (the partial candidate, evaluation scratch buffers) must be
/// per-thread; the view itself never is.
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    /// Current time-slot.
    pub time: u64,
    /// Index of the iteration currently being executed (0-based).
    pub iteration: u64,
    /// Number of iterations already completed.
    pub completed_iterations: u64,
    /// Time-slot at which the current iteration began (i.e., the slot after the
    /// previous iteration completed, or 0).
    pub iteration_started_at: u64,
    /// Per-worker state for the current slot.
    pub workers: &'a [WorkerView],
    /// Static platform description (speeds, capacities, availability chains).
    pub platform: &'a Platform,
    /// Application description (`m`, iteration count).
    pub application: &'a ApplicationSpec,
    /// Master communication capacity (`ncom`, `Tprog`, `Tdata`).
    pub master: &'a MasterSpec,
    /// The configuration currently executing the iteration, if any.
    pub current: Option<&'a ActiveConfiguration>,
}

// The parallel candidate scan in `dg-heuristics` shares one view across the
// scoped threads of a decision; fail the build, not the runtime, if a future
// field (e.g. interior mutability or a non-Sync handle) ever breaks that.
const _: () = {
    const fn assert_shareable<T: Send + Sync + Copy>() {}
    assert_shareable::<SimView<'static>>();
    assert_shareable::<WorkerView>();
};

impl<'a> SimView<'a> {
    /// Indices of the workers that are `UP` during the current slot.
    pub fn up_workers(&self) -> Vec<usize> {
        self.up_workers_iter().collect()
    }

    /// Allocation-free variant of [`SimView::up_workers`]: the `UP` worker
    /// indices as a lazy iterator, for schedulers that scan the set once (or
    /// fill a reused buffer) instead of materializing a fresh `Vec` per
    /// decision.
    pub fn up_workers_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.workers.iter().enumerate().filter(|(_, w)| w.state.is_up()).map(|(q, _)| q)
    }

    /// `true` if worker `q` is `UP` during the current slot.
    pub fn is_up(&self, q: usize) -> bool {
        self.workers[q].state.is_up()
    }

    /// Number of slots already spent on the current iteration (the `t` of the
    /// yield criterion `Y = P/(E + t)`).
    pub fn elapsed_in_iteration(&self) -> u64 {
        self.time - self.iteration_started_at
    }

    /// Communication slots worker `q` would still need to be ready to compute
    /// `tasks` tasks, given what it already holds.
    pub fn comm_slots_remaining(&self, q: usize, tasks: usize) -> u64 {
        self.workers[q].dynamic.comm_slots_remaining(tasks, self.master.t_prog, self.master.t_data)
    }

    /// Per-member communication slots still needed for a candidate assignment.
    pub fn comm_slots_for_assignment(&self, assignment: &Assignment) -> Vec<u64> {
        assignment.entries().iter().map(|&(q, x)| self.comm_slots_remaining(q, x)).collect()
    }

    /// `true` if every member of the current configuration is `UP` and ready
    /// (has the program and all its task data).
    pub fn current_ready_to_compute(&self) -> bool {
        match self.current {
            None => false,
            Some(c) => c
                .assignment
                .entries()
                .iter()
                .all(|&(q, x)| self.is_up(q) && self.comm_slots_remaining(q, x) == 0),
        }
    }
}

/// Scheduler decision for the current slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current configuration (or stay idle if there is none).
    KeepCurrent,
    /// Select a new configuration. If it equals the current one the simulator
    /// treats it as [`Decision::KeepCurrent`]; otherwise any partially
    /// completed computation of the current iteration is lost.
    NewConfiguration(Assignment),
}

/// When a scheduler's [`Scheduler::decide`] answer can change while the
/// observable simulation state does not.
///
/// The slot-stepped engine consults the scheduler at every slot, so any
/// decision rule is fine there. The event-driven engine
/// ([`crate::SimMode::EventDriven`]) skips runs of slots during which the
/// *world* is provably unchanged (no availability transition, no transfer
/// completion) or changes only monotonically (uninterrupted lock-step
/// computation). Skipping a slot also skips that slot's `decide` call, which
/// is only sound if the answer could not have differed from the previous
/// slot's. This struct is the scheduler's declaration of when that holds; the
/// engine re-consults every slot whenever the corresponding flag is `true`.
///
/// The default ([`Reevaluation::every_slot`]) is fully conservative: an
/// unknown scheduler is consulted at every slot of every span and the
/// event-driven engine degrades gracefully to slot granularity (while still
/// producing identical outcomes). Every heuristic in `dg-heuristics` falls in
/// one of the patterns below and opts out of the consultations it does not
/// need:
///
/// * passive-style schedulers (`RANDOM`, the passive heuristics `IP`/`IE`/
///   `IY`/`IAY`, the fixed-assignment scheduler) never reconsider an
///   installed configuration, so nothing beyond the configuration's own
///   events matters: [`Reevaluation::never`];
/// * proactive `P-*`/`E-*` heuristics over time-free bases are clock-free
///   but *do* watch the rest of the platform — a worker crossing the `UP`
///   boundary or an enrolled worker's download progressing can change the
///   candidate — so they set `on_outside_transitions` and `during_transfer`
///   while leaving the per-slot flags `false`;
/// * with a yield-style decay on top (`Y-IP`/`Y-IE`/`Y-IAY`): while
///   computation accumulates, the running configuration's yield can only
///   improve relative to the (fixed) candidate, so additionally only
///   *frozen* spans (suspension, stalled communication) need per-slot
///   re-evaluation — `during_stall: true`;
/// * when the candidate itself drifts with elapsed time (`*-IY`), every span
///   with an installed configuration needs per-slot re-evaluation, but idle
///   spans are still safe because whether a configuration *can* be built
///   depends only on the `UP` set and worker capacities, never on the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reevaluation {
    /// Consult `decide` every slot while an installed configuration is
    /// accumulating lock-step computation (all members `UP`).
    pub during_computation: bool,
    /// Consult `decide` every slot while a configuration is installed but
    /// frozen: computation suspended by a `RECLAIMED` member, or outstanding
    /// communication that cannot progress.
    pub during_stall: bool,
    /// Consult `decide` every slot while no configuration is installed and no
    /// worker changes state. Only needed by schedulers that may *start* a
    /// configuration based on the clock alone.
    pub while_idle: bool,
    /// Consult `decide` every slot while the installed configuration is
    /// downloading (transfers progressing). Transfer progress changes worker
    /// holdings slot by slot, which proactive schedulers observe through
    /// their candidate fingerprints; passive-style schedulers keep an
    /// installed configuration unconditionally and can leave this `false`,
    /// letting the engine jump between message completions.
    pub during_transfer: bool,
    /// While a configuration is installed, consult `decide` again when a
    /// worker *outside* the configuration crosses the `UP` boundary (enters
    /// or leaves `UP`). Proactive schedulers need this — a freshly available
    /// fast worker can make switching worthwhile — while passive-style
    /// schedulers never touch an installed configuration and can leave it
    /// `false`, letting the engine sleep through unrelated churn.
    ///
    /// Regardless of this flag, the engine always wakes for transitions of
    /// configuration members, for any worker entering `DOWN` while it holds
    /// program or data (the crash must be applied at the right slot), and —
    /// while idle — for any worker entering `UP` (which is the only change
    /// that can make a configuration installable).
    pub on_outside_transitions: bool,
}

impl Reevaluation {
    /// Decisions are a pure function of the world state *visible to a passive
    /// scheduler*: nothing depends on the clock, and an installed
    /// configuration is never reconsidered, so only events involving its
    /// members (or, while idle, workers entering `UP`) matter.
    pub const fn never() -> Self {
        Reevaluation {
            during_computation: false,
            during_stall: false,
            while_idle: false,
            on_outside_transitions: false,
            during_transfer: false,
        }
    }

    /// Conservative default: consult at every slot of every span.
    pub const fn every_slot() -> Self {
        Reevaluation {
            during_computation: true,
            during_stall: true,
            while_idle: true,
            on_outside_transitions: true,
            during_transfer: true,
        }
    }
}

impl Default for Reevaluation {
    fn default() -> Self {
        Reevaluation::every_slot()
    }
}

/// The scheduling policy driven by the simulator.
///
/// The slot-stepped engine calls [`Scheduler::decide`] exactly once per
/// time-slot, before executing the slot. The event-driven engine calls it at
/// every *decision point* — any slot at which the scheduler's answer could
/// differ from the previous slot's, as declared by
/// [`Scheduler::reevaluation`] — and produces identical outcomes.
/// Implementations live in the `dg-heuristics` crate.
pub trait Scheduler {
    /// Human-readable name (e.g. `"Y-IE"`), used in reports.
    fn name(&self) -> &str;

    /// Decide what to do at the current slot.
    fn decide(&mut self, view: &SimView<'_>) -> Decision;

    /// Called when an iteration completes, so that stateful schedulers can
    /// reset per-iteration bookkeeping. The default does nothing.
    fn on_iteration_complete(&mut self, _completed: u64) {}

    /// Declare when [`Scheduler::decide`] must be re-consulted even though
    /// the observable simulation state did not change. The conservative
    /// default re-consults every slot; see [`Reevaluation`] for the contract
    /// and the patterns under which a scheduler may relax it.
    fn reevaluation(&self) -> Reevaluation {
        Reevaluation::every_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn fixture() -> (Platform, ApplicationSpec, MasterSpec) {
        (
            Platform::new(
                vec![WorkerSpec::new(1), WorkerSpec::new(2), WorkerSpec::new(3)],
                vec![MarkovChain3::always_up(); 3],
            ),
            ApplicationSpec::new(3, 10),
            MasterSpec::from_slots(2, 2, 1),
        )
    }

    #[test]
    fn view_helpers() {
        let (platform, application, master) = fixture();
        let workers = vec![
            WorkerView { state: ProcState::Up, dynamic: WorkerDynamicState::fresh() },
            WorkerView { state: ProcState::Reclaimed, dynamic: WorkerDynamicState::fresh() },
            WorkerView {
                state: ProcState::Up,
                dynamic: WorkerDynamicState {
                    has_program: true,
                    data_messages: 1,
                    ..Default::default()
                },
            },
        ];
        let view = SimView {
            time: 12,
            iteration: 2,
            completed_iterations: 2,
            iteration_started_at: 9,
            workers: &workers,
            platform: &platform,
            application: &application,
            master: &master,
            current: None,
        };
        assert_eq!(view.up_workers(), vec![0, 2]);
        assert_eq!(view.up_workers_iter().collect::<Vec<_>>(), view.up_workers());
        assert!(view.is_up(0));
        assert!(!view.is_up(1));
        assert_eq!(view.elapsed_in_iteration(), 3);
        // worker 0 holds nothing: program (2) + 2 tasks (2*1) = 4
        assert_eq!(view.comm_slots_remaining(0, 2), 4);
        // worker 2 has program and one data message: 2 tasks -> 1 more message
        assert_eq!(view.comm_slots_remaining(2, 2), 1);
        let a = Assignment::new([(0, 1), (2, 2)]);
        assert_eq!(view.comm_slots_for_assignment(&a), vec![3, 1]);
        assert!(!view.current_ready_to_compute());
    }

    #[test]
    fn ready_to_compute_requires_all_members_up_and_fed() {
        let (platform, application, master) = fixture();
        let ready =
            WorkerDynamicState { has_program: true, data_messages: 1, ..Default::default() };
        let workers = vec![
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Reclaimed, dynamic: ready },
        ];
        let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
        let config = ActiveConfiguration::new(assignment, &platform, 0);
        let view = SimView {
            time: 5,
            iteration: 0,
            completed_iterations: 0,
            iteration_started_at: 0,
            workers: &workers,
            platform: &platform,
            application: &application,
            master: &master,
            current: Some(&config),
        };
        // worker 2 is reclaimed -> not ready.
        assert!(!view.current_ready_to_compute());

        let workers_up = vec![
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
        ];
        let view_up = SimView { workers: &workers_up, ..view };
        assert!(view_up.current_ready_to_compute());
    }
}
