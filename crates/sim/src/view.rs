//! The scheduler-facing view of the simulation and the scheduler interface.

use crate::assignment::Assignment;
use crate::config::ActiveConfiguration;
use crate::worker_state::WorkerDynamicState;
use dg_availability::ProcState;
use dg_platform::{ApplicationSpec, MasterSpec, Platform};

/// Per-worker information visible to the scheduler at the current slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerView {
    /// Availability state of the worker during the current slot.
    pub state: ProcState,
    /// What the worker currently holds (program, data, in-flight transfer).
    pub dynamic: WorkerDynamicState,
}

/// A read-only snapshot handed to the scheduler once per time-slot.
///
/// The view deliberately exposes **no future availability information**: the
/// on-line heuristics only see the present state of each worker, the static
/// platform description (including the per-worker Markov chains, which are the
/// published "availability statistics" the heuristics are allowed to use) and
/// the progress of the current iteration.
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    /// Current time-slot.
    pub time: u64,
    /// Index of the iteration currently being executed (0-based).
    pub iteration: u64,
    /// Number of iterations already completed.
    pub completed_iterations: u64,
    /// Time-slot at which the current iteration began (i.e., the slot after the
    /// previous iteration completed, or 0).
    pub iteration_started_at: u64,
    /// Per-worker state for the current slot.
    pub workers: &'a [WorkerView],
    /// Static platform description (speeds, capacities, availability chains).
    pub platform: &'a Platform,
    /// Application description (`m`, iteration count).
    pub application: &'a ApplicationSpec,
    /// Master communication capacity (`ncom`, `Tprog`, `Tdata`).
    pub master: &'a MasterSpec,
    /// The configuration currently executing the iteration, if any.
    pub current: Option<&'a ActiveConfiguration>,
}

impl<'a> SimView<'a> {
    /// Indices of the workers that are `UP` during the current slot.
    pub fn up_workers(&self) -> Vec<usize> {
        self.workers.iter().enumerate().filter(|(_, w)| w.state.is_up()).map(|(q, _)| q).collect()
    }

    /// `true` if worker `q` is `UP` during the current slot.
    pub fn is_up(&self, q: usize) -> bool {
        self.workers[q].state.is_up()
    }

    /// Number of slots already spent on the current iteration (the `t` of the
    /// yield criterion `Y = P/(E + t)`).
    pub fn elapsed_in_iteration(&self) -> u64 {
        self.time - self.iteration_started_at
    }

    /// Communication slots worker `q` would still need to be ready to compute
    /// `tasks` tasks, given what it already holds.
    pub fn comm_slots_remaining(&self, q: usize, tasks: usize) -> u64 {
        self.workers[q].dynamic.comm_slots_remaining(tasks, self.master.t_prog, self.master.t_data)
    }

    /// Per-member communication slots still needed for a candidate assignment.
    pub fn comm_slots_for_assignment(&self, assignment: &Assignment) -> Vec<u64> {
        assignment.entries().iter().map(|&(q, x)| self.comm_slots_remaining(q, x)).collect()
    }

    /// `true` if every member of the current configuration is `UP` and ready
    /// (has the program and all its task data).
    pub fn current_ready_to_compute(&self) -> bool {
        match self.current {
            None => false,
            Some(c) => c
                .assignment
                .entries()
                .iter()
                .all(|&(q, x)| self.is_up(q) && self.comm_slots_remaining(q, x) == 0),
        }
    }
}

/// Scheduler decision for the current slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current configuration (or stay idle if there is none).
    KeepCurrent,
    /// Select a new configuration. If it equals the current one the simulator
    /// treats it as [`Decision::KeepCurrent`]; otherwise any partially
    /// completed computation of the current iteration is lost.
    NewConfiguration(Assignment),
}

/// The scheduling policy driven by the simulator.
///
/// The simulator calls [`Scheduler::decide`] exactly once per time-slot, before
/// executing the slot. Implementations live in the `dg-heuristics` crate.
pub trait Scheduler {
    /// Human-readable name (e.g. `"Y-IE"`), used in reports.
    fn name(&self) -> &str;

    /// Decide what to do at the current slot.
    fn decide(&mut self, view: &SimView<'_>) -> Decision;

    /// Called when an iteration completes, so that stateful schedulers can
    /// reset per-iteration bookkeeping. The default does nothing.
    fn on_iteration_complete(&mut self, _completed: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_availability::MarkovChain3;
    use dg_platform::WorkerSpec;

    fn fixture() -> (Platform, ApplicationSpec, MasterSpec) {
        (
            Platform::new(
                vec![WorkerSpec::new(1), WorkerSpec::new(2), WorkerSpec::new(3)],
                vec![MarkovChain3::always_up(); 3],
            ),
            ApplicationSpec::new(3, 10),
            MasterSpec::from_slots(2, 2, 1),
        )
    }

    #[test]
    fn view_helpers() {
        let (platform, application, master) = fixture();
        let workers = vec![
            WorkerView { state: ProcState::Up, dynamic: WorkerDynamicState::fresh() },
            WorkerView { state: ProcState::Reclaimed, dynamic: WorkerDynamicState::fresh() },
            WorkerView {
                state: ProcState::Up,
                dynamic: WorkerDynamicState {
                    has_program: true,
                    data_messages: 1,
                    ..Default::default()
                },
            },
        ];
        let view = SimView {
            time: 12,
            iteration: 2,
            completed_iterations: 2,
            iteration_started_at: 9,
            workers: &workers,
            platform: &platform,
            application: &application,
            master: &master,
            current: None,
        };
        assert_eq!(view.up_workers(), vec![0, 2]);
        assert!(view.is_up(0));
        assert!(!view.is_up(1));
        assert_eq!(view.elapsed_in_iteration(), 3);
        // worker 0 holds nothing: program (2) + 2 tasks (2*1) = 4
        assert_eq!(view.comm_slots_remaining(0, 2), 4);
        // worker 2 has program and one data message: 2 tasks -> 1 more message
        assert_eq!(view.comm_slots_remaining(2, 2), 1);
        let a = Assignment::new([(0, 1), (2, 2)]);
        assert_eq!(view.comm_slots_for_assignment(&a), vec![3, 1]);
        assert!(!view.current_ready_to_compute());
    }

    #[test]
    fn ready_to_compute_requires_all_members_up_and_fed() {
        let (platform, application, master) = fixture();
        let ready =
            WorkerDynamicState { has_program: true, data_messages: 1, ..Default::default() };
        let workers = vec![
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Reclaimed, dynamic: ready },
        ];
        let assignment = Assignment::new([(0, 1), (1, 1), (2, 1)]);
        let config = ActiveConfiguration::new(assignment, &platform, 0);
        let view = SimView {
            time: 5,
            iteration: 0,
            completed_iterations: 0,
            iteration_started_at: 0,
            workers: &workers,
            platform: &platform,
            application: &application,
            master: &master,
            current: Some(&config),
        };
        // worker 2 is reclaimed -> not ready.
        assert!(!view.current_ready_to_compute());

        let workers_up = vec![
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
            WorkerView { state: ProcState::Up, dynamic: ready },
        ];
        let view_up = SimView { workers: &workers_up, ..view };
        assert!(view_up.current_ready_to_compute());
    }
}
