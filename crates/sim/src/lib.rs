//! # dg-sim
//!
//! Time-slot discrete-event simulator for tightly-coupled iterative
//! master–worker applications on volatile desktop grids, implementing the
//! execution model of Section III of *"Scheduling Tightly-Coupled Applications
//! on Heterogeneous Desktop Grids"* (Casanova, Dufossé, Robert, Vivien —
//! HCW/IPDPS 2013).
//!
//! The simulator advances time one slot at a time. At every slot it:
//!
//! 1. reads the availability state of every worker from an
//!    [`dg_availability::AvailabilityModel`];
//! 2. applies the consequences of `DOWN` workers (loss of program, data and
//!    any partially completed iteration);
//! 3. consults a [`Scheduler`] (implemented in `dg-heuristics`), which may keep
//!    the current configuration or select a new one;
//! 4. executes the slot: allocates the master's bounded multi-port bandwidth
//!    (`ncom` simultaneous transfers) to enrolled `UP` workers that still need
//!    the program or task data, or — once every enrolled worker has everything —
//!    advances the lock-step computation by one slot when *all* enrolled
//!    workers are simultaneously `UP`.
//!
//! An iteration completes once `max_q x_q·w_q` slots of simultaneous
//! computation have been accumulated; the application completes after the
//! configured number of iterations. Runs are bounded by a configurable
//! time-slot cap (the paper uses 10⁶) after which the run is declared failed.

#![warn(missing_docs)]

pub mod assignment;
pub mod config;
pub mod engine;
pub mod events;
pub mod fixed;
pub mod metrics;
pub mod view;
pub mod worker_state;

pub use assignment::Assignment;
pub use config::ActiveConfiguration;
pub use engine::{SimulationLimits, Simulator};
pub use events::{Event, EventKind, EventLog};
pub use fixed::FixedAssignmentScheduler;
pub use metrics::{SimOutcome, SimStats};
pub use view::{Decision, Scheduler, SimView, WorkerView};
pub use worker_state::WorkerDynamicState;
