//! # dg-sim
//!
//! Discrete-event simulator for tightly-coupled iterative master–worker
//! applications on volatile desktop grids, implementing the execution model of
//! Section III of *"Scheduling Tightly-Coupled Applications on Heterogeneous
//! Desktop Grids"* (Casanova, Dufossé, Robert, Vivien — HCW/IPDPS 2013).
//!
//! The simulated semantics are defined slot by slot. At every time-slot the
//! engine:
//!
//! 1. reads the availability state of every worker from an
//!    [`dg_availability::AvailabilityModel`];
//! 2. applies the consequences of `DOWN` workers (loss of program, data and
//!    any partially completed iteration);
//! 3. consults a [`Scheduler`] (implemented in `dg-heuristics`), which may keep
//!    the current configuration or select a new one;
//! 4. executes the slot: allocates the master's bounded multi-port bandwidth
//!    (`ncom` simultaneous transfers) to enrolled `UP` workers that still need
//!    the program or task data, or — once every enrolled worker has everything —
//!    advances the lock-step computation by one slot when *all* enrolled
//!    workers are simultaneously `UP`.
//!
//! An iteration completes once `max_q x_q·w_q` slots of simultaneous
//! computation have been accumulated; the application completes after the
//! configured number of iterations. Runs are bounded by a configurable
//! time-slot cap (the paper uses 10⁶) after which the run is declared failed.
//!
//! ## Engine modes
//!
//! Two engines execute those semantics (see [`SimMode`]): the literal
//! slot-stepper, and the default **event-driven** engine, which jumps from
//! event to event — availability transitions, phase completions, scheduler
//! re-evaluation points ([`view::Reevaluation`]) — and accounts for the
//! skipped slots in bulk. Both produce byte-identical [`SimOutcome`]s;
//! [`EngineReport`] says how many slots the engine actually executed.
//!
//! ```
//! use dg_platform::{ApplicationSpec, MasterSpec, Platform};
//! use dg_availability::ScriptedAvailability;
//! use dg_sim::{Assignment, FixedAssignmentScheduler, SimMode, Simulator};
//!
//! // One worker (speed 4), one task, one iteration, no communication cost;
//! // the worker is reclaimed for three slots in the middle of the run.
//! let run = |mode: SimMode| {
//!     let platform = Platform::reliable_homogeneous(1, 4);
//!     let availability = ScriptedAvailability::from_codes(&["UURRRUUUU"]);
//!     let mut scheduler = FixedAssignmentScheduler::new(Assignment::new([(0, 1)]));
//!     Simulator::from_parts(
//!         platform,
//!         ApplicationSpec::new(1, 1),
//!         MasterSpec::from_slots(1, 0, 0),
//!         availability,
//!     )
//!     .with_mode(mode)
//!     .run_with_report(&mut scheduler)
//! };
//! let (slot_outcome, _, slot_report) = run(SimMode::SlotStepped);
//! let (event_outcome, _, event_report) = run(SimMode::EventDriven);
//! // 4 compute slots + 3 reclaimed slots -> makespan 7, in both modes...
//! assert_eq!(slot_outcome.makespan, Some(7));
//! assert_eq!(slot_outcome, event_outcome);
//! // ...but the event engine skipped the frozen interior of each span.
//! assert_eq!(slot_report.executed_slots, 7);
//! assert!(event_report.executed_slots < slot_report.executed_slots);
//! ```

#![warn(missing_docs)]

pub mod assignment;
pub mod config;
pub mod decision;
pub mod engine;
pub mod events;
pub mod fixed;
pub mod metrics;
pub mod queue;
pub mod view;
pub mod worker_state;

pub use assignment::Assignment;
pub use config::ActiveConfiguration;
pub use decision::DecisionContext;
pub use engine::{EngineReport, InvalidLimits, SimMode, SimulationLimits, Simulator};
pub use events::{Event, EventKind, EventLog};
pub use fixed::FixedAssignmentScheduler;
pub use metrics::{SimOutcome, SimStats};
pub use queue::{WakeEvent, WakeKind, WakeQueue};
pub use view::{Decision, Reevaluation, Scheduler, SimView, WorkerView};
pub use worker_state::WorkerDynamicState;
