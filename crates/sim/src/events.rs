//! Optional event log for detailed execution traces.
//!
//! Event logging is disabled by default (experiment campaigns run millions of
//! slots); it is enabled for examples and tests that need to inspect an
//! execution slot by slot, such as the reproduction of the paper's Figure 1.

use crate::assignment::Assignment;
use serde::{Deserialize, Serialize};

/// What happened during a time-slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new iteration began.
    IterationStarted {
        /// 0-based iteration index.
        iteration: u64,
    },
    /// The scheduler selected a (new) configuration.
    ConfigurationSelected {
        /// The selected task-to-worker mapping.
        assignment: Assignment,
        /// `true` if a configuration was already active and was replaced
        /// without any of its workers having failed (a proactive change).
        proactive: bool,
    },
    /// A worker received one slot of transfer from the master.
    TransferSlot {
        /// The receiving worker.
        worker: usize,
        /// `true` if the slot carried program bytes, `false` for task data.
        program: bool,
    },
    /// A worker finished receiving the application program.
    ProgramReceived {
        /// The worker that now holds the program.
        worker: usize,
    },
    /// A worker finished receiving the data of one task.
    DataReceived {
        /// The worker that received the message.
        worker: usize,
        /// Total data messages it now holds for this iteration.
        total_messages: usize,
    },
    /// One slot of simultaneous (lock-step) computation was performed.
    ComputationSlot {
        /// Slots of computation accumulated so far in this iteration.
        done: u64,
        /// Total workload of the iteration.
        workload: u64,
    },
    /// The computation was suspended because an enrolled worker is `RECLAIMED`.
    ComputationSuspended,
    /// An enrolled worker went `DOWN`; the iteration restarts from scratch.
    IterationAborted {
        /// The workers whose failure caused the abort.
        failed_workers: Vec<usize>,
    },
    /// An iteration completed successfully.
    IterationCompleted {
        /// 0-based index of the completed iteration.
        iteration: u64,
    },
    /// The run finished (all iterations done or the slot cap was reached).
    RunFinished {
        /// `true` if all iterations completed before the cap.
        success: bool,
    },
}

/// A time-stamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Time-slot at which the event happened.
    pub time: u64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only event log that can be disabled at construction time.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    completions_only: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// An enabled (recording) log.
    pub fn enabled() -> Self {
        EventLog { enabled: true, completions_only: false, events: Vec::new() }
    }

    /// A disabled log: `push` is a no-op.
    pub fn disabled() -> Self {
        EventLog { enabled: false, completions_only: false, events: Vec::new() }
    }

    /// A log that records only [`EventKind::IterationCompleted`] events.
    ///
    /// The gap experiment needs per-iteration completion slots from runs
    /// spanning up to the full slot cap; keeping only the (at most
    /// `iterations`-many) completion events keeps memory flat where a full
    /// log would grow with every simulated slot.
    pub fn completions_only() -> Self {
        EventLog { enabled: true, completions_only: true, events: Vec::new() }
    }

    /// `true` if the log records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled; non-completion events are
    /// dropped by a [`EventLog::completions_only`] log).
    pub fn push(&mut self, time: u64, kind: EventKind) {
        if self.enabled
            && (!self.completions_only || matches!(kind, EventKind::IterationCompleted { .. }))
        {
            self.events.push(Event { time, kind });
        }
    }

    /// All recorded events, in chronological order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded events of the given iteration-completion kind, as a quick way
    /// to extract iteration boundaries.
    pub fn iteration_completions(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::IterationCompleted { .. } => Some(e.time),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.push(3, EventKind::ComputationSuspended);
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn completions_only_log_filters_other_kinds() {
        let mut log = EventLog::completions_only();
        log.push(0, EventKind::IterationStarted { iteration: 0 });
        log.push(2, EventKind::ComputationSuspended);
        log.push(4, EventKind::IterationCompleted { iteration: 0 });
        log.push(5, EventKind::RunFinished { success: true });
        assert!(log.is_enabled());
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.iteration_completions(), vec![4]);
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::enabled();
        log.push(1, EventKind::IterationStarted { iteration: 0 });
        log.push(4, EventKind::IterationCompleted { iteration: 0 });
        log.push(9, EventKind::IterationCompleted { iteration: 1 });
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.iteration_completions(), vec![4, 9]);
        assert!(log.is_enabled());
    }
}
