//! # desktop-grid-scheduling
//!
//! A from-scratch Rust reproduction of *"Scheduling Tightly-Coupled
//! Applications on Heterogeneous Desktop Grids"* (Henri Casanova, Fanny
//! Dufossé, Yves Robert, Frédéric Vivien — HCW/IPDPS 2013, hal-00788606).
//!
//! The paper studies how to run a **tightly-coupled iterative master–worker
//! application** (every task of an iteration must progress in lock-step, so
//! all enrolled workers must be simultaneously available) on a **desktop
//! grid** whose processors alternate between `UP`, `RECLAIMED` and `DOWN`
//! states, under a **bounded multi-port** master whose bandwidth limits how
//! many workers can download the program and task data at once.
//!
//! This facade crate re-exports the individual building blocks:
//!
//! | Module | Contents |
//! |---|---|
//! | [`availability`] | 3-state Markov / semi-Markov availability models, traces, matrices |
//! | [`platform`] | workers, master, application, experimental scenarios |
//! | [`sim`] | the time-slot discrete-event simulator (Section III) |
//! | [`analysis`] | success-probability / expected-time approximations (Section V) |
//! | [`heuristics`] | RANDOM, IP, IE, IY, IAY and the 12 proactive C-H heuristics (Section VI) |
//! | [`offline`] | the NP-hard off-line problem, ENCD reductions, exact/greedy solvers and chained makespan oracles (Section IV) |
//! | [`experiments`] | campaign harness, %diff/%wins metrics, Table I/II, Figure 2 and the optimality-gap sweep (Section VII) |
//!
//! ## Quick start
//!
//! ```
//! use desktop_grid_scheduling::prelude::*;
//!
//! // A paper-style scenario: 20 workers, m = 5 tasks, ncom = 10, wmin = 1.
//! let scenario = Scenario::generate(ScenarioParams::paper(5, 10, 1), 42);
//! // One availability realization (trial).
//! let availability = scenario.availability_for_trial(7, false);
//! // The paper's best heuristic, Y-IE.
//! let mut scheduler = build_heuristic("Y-IE", 0, 1e-7).unwrap();
//! let (outcome, _log) = Simulator::new(&scenario, availability)
//!     .with_limits(SimulationLimits::with_max_slots(200_000).unwrap())
//!     .run(scheduler.as_mut());
//! assert!(outcome.completed_iterations <= 10);
//! ```

pub use dg_analysis as analysis;
pub use dg_availability as availability;
pub use dg_experiments as experiments;
pub use dg_heuristics as heuristics;
pub use dg_offline as offline;
pub use dg_platform as platform;
pub use dg_sim as sim;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use dg_analysis::{
        Estimator, EvalCache, GroupComputation, IterationEstimate, PlatformTables,
    };
    pub use dg_availability::trace::{AvailabilityModel, MarkovAvailability, ScriptedAvailability};
    pub use dg_availability::{MarkovChain3, ProcState, SemiMarkovModel, StateTrace};
    pub use dg_heuristics::{
        build_heuristic, build_heuristic_with_cache, HeuristicSpec, PassiveKind, PassiveScheduler,
        ProactiveCriterion, ProactiveScheduler, RandomScheduler,
    };
    pub use dg_offline::{
        earliest_finish_exact, earliest_finish_greedy, greedy_mu1, schedule_exact, schedule_greedy,
        solve_mu1_exact, EncdInstance, OfflineInstance, OfflineSchedule, OfflineSolution,
        OracleVariant,
    };
    pub use dg_platform::{
        AppShape, ApplicationSpec, AvailabilityRegime, MasterSpec, Platform, Scenario,
        ScenarioModel, ScenarioParams, SpeedProfile, TrialModel, WorkerSpec,
    };
    pub use dg_sim::{
        Assignment, Decision, EventKind, FixedAssignmentScheduler, Scheduler, SimOutcome,
        SimulationLimits, Simulator,
    };
}
